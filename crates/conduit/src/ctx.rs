//! The per-PE communication context: issue one-sided operations with real
//! data movement and virtual-time accounting.
//!
//! Every operation is described by an [`OpDesc`] and executed by
//! [`Ctx::submit`] — the single fallible choke point where the sanitizer,
//! metrics, flow tracing, fault-retry, coalescing, and active-message
//! paths hook. The named public methods (`put`, `try_put`, `put_nbi`,
//! `iput`, `amo`, `am_send`, ...) are thin shims over `submit`.

use crate::am::{AmHandler, AmHandlerId, AmTarget};
use crate::coalesce::{
    CoalescePolicy, Coalescer, CoalescingConfig, NodeBuf, StagedOp, StagedPayload,
};
use crate::cost::{CostModel, FlowDetail, AM_HEADER_BYTES};
use crate::op::{Completion, OpDesc, OpKind, OpReceipt};
use crate::pending::{Hazard, HazardKind, PendingSet};
use crate::profile::ConduitProfile;
use pgas_machine::machine::{Machine, Pe, PeId};
use pgas_machine::sanitizer::{HazardKind as SanKind, HazardReport};
use pgas_machine::stats::{FaultEvent, Stats};
use pgas_machine::trace::{Span, SpanKind};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram name for an op kind's end-to-end latency (metrics registry
/// keys are `&'static str`, so the mapping is a static table).
fn latency_metric(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Put => "put_ns",
        SpanKind::Get => "get_ns",
        SpanKind::Amo => "amo_ns",
        SpanKind::Quiet => "quiet_ns",
        SpanKind::Barrier => "barrier_ns",
        SpanKind::WaitUntil => "wait_until_ns",
        SpanKind::Compute => "compute_ns",
        SpanKind::Collective => "collective_ns",
        SpanKind::Retry => "retry_ns",
        SpanKind::Fault => "fault_ns",
    }
}

/// Behavioural switches of a context.
#[derive(Debug, Clone, Copy, Default)]
pub struct CtxOptions {
    /// Panic on ordering hazards instead of only counting them. Used by
    /// tests that prove the CAF runtime inserts the required `quiet`s.
    pub strict_ordering: bool,
    /// Convert same-node transfers into direct load/store copies
    /// (`shmem_ptr`), bypassing the message path. §VII future work.
    pub shmem_ptr_fastpath: bool,
    /// Whether this context coalesces small puts and non-fetching AMOs
    /// into per-destination-node staging buffers (see
    /// [`crate::coalesce`]). `Auto` (the default) defers to the machine's
    /// aggregation default, so existing call sites keep their exact
    /// pre-coalescing behaviour unless the environment opts in.
    pub coalesce: CoalescePolicy,
}

/// Remote atomic operations on an 8-byte symmetric word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmoOp {
    /// Atomically replace, returning the old value (`shmem_swap`).
    Swap(u64),
    /// Replace with `value` iff the current value equals `cond`, returning
    /// the old value (`shmem_cswap`).
    CompareSwap { cond: u64, value: u64 },
    /// Add and return the old value (`shmem_fadd`).
    FetchAdd(u64),
    /// Add without fetching (`shmem_add`).
    Add(u64),
    /// Atomic read (`shmem_fetch`).
    Fetch,
    /// Atomic write (`shmem_set`).
    Set(u64),
    /// Bitwise AND without fetching (`shmem_and`).
    And(u64),
    /// Bitwise OR without fetching (`shmem_or`).
    Or(u64),
    /// Bitwise XOR without fetching (`shmem_xor`).
    Xor(u64),
    /// Bitwise AND, returning the old value.
    FetchAnd(u64),
    /// Bitwise OR, returning the old value.
    FetchOr(u64),
    /// Bitwise XOR, returning the old value.
    FetchXor(u64),
}

impl AmoOp {
    /// Does the caller block for the result?
    pub fn is_fetching(self) -> bool {
        matches!(
            self,
            AmoOp::Swap(_)
                | AmoOp::CompareSwap { .. }
                | AmoOp::FetchAdd(_)
                | AmoOp::Fetch
                | AmoOp::FetchAnd(_)
                | AmoOp::FetchOr(_)
                | AmoOp::FetchXor(_)
        )
    }
}

/// Apply `op` to an atomic heap word, returning the previous value. Shared
/// by the direct AMO path and the coalesced-flush replay so both apply
/// identical semantics.
fn amo_word(word: &AtomicU64, op: AmoOp) -> u64 {
    match op {
        AmoOp::Swap(v) => word.swap(v, Ordering::AcqRel),
        AmoOp::CompareSwap { cond, value } => {
            match word.compare_exchange(cond, value, Ordering::AcqRel, Ordering::Acquire) {
                Ok(prev) => prev,
                Err(prev) => prev,
            }
        }
        AmoOp::FetchAdd(v) | AmoOp::Add(v) => word.fetch_add(v, Ordering::AcqRel),
        AmoOp::Fetch => word.load(Ordering::Acquire),
        AmoOp::Set(v) => word.swap(v, Ordering::AcqRel),
        AmoOp::And(v) | AmoOp::FetchAnd(v) => word.fetch_and(v, Ordering::AcqRel),
        AmoOp::Or(v) | AmoOp::FetchOr(v) => word.fetch_or(v, Ordering::AcqRel),
        AmoOp::Xor(v) | AmoOp::FetchXor(v) => word.fetch_xor(v, Ordering::AcqRel),
    }
}

/// Why a fallible one-sided operation could not be delivered.
///
/// Only produced when the machine runs under a [fault
/// plan](pgas_machine::FaultPlan); on a fault-free machine every operation
/// succeeds and the infallible entry points never panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConduitError {
    /// The target PE was marked dead (scheduled PE failure). Layers above
    /// map this onto Fortran 2018 `STAT_FAILED_IMAGE`.
    TargetFailed { op: &'static str, target: PeId },
    /// The operation kept hitting transient faults and ran out of retry
    /// attempts (see [`pgas_machine::RetryPolicy`]).
    RetriesExhausted { op: &'static str, target: PeId, attempts: u32 },
    /// Every delivery attempt arrived with a payload whose end-to-end CRC32
    /// failed verification (injected `FaultKind::Corrupt` under
    /// `PGAS_CHECKSUM`). Without checksums the same draws surface as
    /// [`ConduitError::RetriesExhausted`] — the typed variant is exactly
    /// what end-to-end verification buys.
    PayloadCorrupt { op: &'static str, target: PeId, attempts: u32 },
}

impl std::fmt::Display for ConduitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConduitError::TargetFailed { op, target } => {
                write!(f, "{op} to PE {target} failed: target PE is dead")
            }
            ConduitError::RetriesExhausted { op, target, attempts } => {
                write!(f, "{op} to PE {target} gave up after {attempts} attempts")
            }
            ConduitError::PayloadCorrupt { op, target, attempts } => {
                write!(
                    f,
                    "{op} to PE {target} failed CRC32 verification on all {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for ConduitError {}

/// The single conversion the infallible entry points use: a fault that a
/// fallible caller would handle becomes a hard panic here.
fn unwrap_infallible<T>(r: Result<T, ConduitError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            panic!("{e}; use the fallible conduit/CAF interfaces to handle injected faults")
        }
    }
}

/// Per-PE one-sided communication engine. Not `Sync`: each PE thread owns
/// exactly one (plus any sibling contexts it creates — see
/// [`Ctx::create_ctx`]).
pub struct Ctx<'m> {
    pe: Pe<'m>,
    cost: CostModel<'m>,
    pending: RefCell<PendingSet>,
    opts: CtxOptions,
    hazards: Cell<u64>,
    /// `Some` iff this context coalesces (resolved once at construction
    /// from the thread override, the options, and the machine default).
    coalescer: Option<RefCell<Coalescer>>,
    /// SPMD-symmetric active-message handler table (see [`crate::am`]).
    /// Shared across sibling contexts so a handler registered on the
    /// primary context is callable from any `shmem_ctx_create`d one.
    am_handlers: Rc<RefCell<Vec<Rc<dyn AmHandler>>>>,
    /// This context's NIC channel id (0 = the primary/default context).
    /// Carried into every arbiter turn so tied turns from *different
    /// contexts of the same PE* stay distinguishable and deterministic.
    ctx_id: u32,
    /// Next sibling id, shared across all contexts of this PE.
    next_ctx: Rc<Cell<u32>>,
    /// Team scope ops are attributed to (0 = world); set by `change team`.
    team_scope: Cell<u32>,
    /// Effective team of the op currently inside `submit` (attribution for
    /// `record_op`/`flag_hazard`, which sit below the descriptor).
    active_team: Cell<u32>,
    /// Errors detected after their op already returned a staged receipt —
    /// a coalesced put whose target died before the flush lands here and
    /// surfaces at the next [`Ctx::try_quiet`].
    deferred: RefCell<Vec<ConduitError>>,
    /// End-to-end payload checksums (resolved once from the machine).
    checksums: bool,
    /// CRC32 the op currently inside `submit` carried (verified at apply).
    inflight_crc: Cell<Option<u32>>,
}

impl<'m> Ctx<'m> {
    pub fn new(pe: Pe<'m>, profile: ConduitProfile, opts: CtxOptions) -> Self {
        Self::build(pe, profile, opts, 0, Rc::new(Cell::new(1)), Rc::new(RefCell::new(Vec::new())))
    }

    fn build(
        pe: Pe<'m>,
        profile: ConduitProfile,
        opts: CtxOptions,
        ctx_id: u32,
        next_ctx: Rc<Cell<u32>>,
        am_handlers: Rc<RefCell<Vec<Rc<dyn AmHandler>>>>,
    ) -> Self {
        let m = pe.machine();
        // Resolution precedence mirrors the tracing/metrics switches: a
        // `with_forced_aggregation` thread override beats the explicit
        // per-context policy, which beats the machine/environment default.
        let cfg = match (m.aggregation_forced(), opts.coalesce) {
            (Some(false), _) => None,
            (Some(true), CoalescePolicy::On(c)) => Some(c),
            (Some(true), _) => Some(CoalescingConfig::default()),
            (None, CoalescePolicy::Off) => None,
            (None, CoalescePolicy::On(c)) => Some(c),
            (None, CoalescePolicy::Auto) => m.aggregation_default().then(CoalescingConfig::default),
        };
        Ctx {
            pe,
            cost: CostModel::new(pe.machine(), profile),
            pending: RefCell::new(PendingSet::default()),
            opts,
            hazards: Cell::new(0),
            coalescer: cfg.map(|c| RefCell::new(Coalescer::new(c))),
            am_handlers,
            ctx_id,
            next_ctx,
            team_scope: Cell::new(0),
            active_team: Cell::new(0),
            deferred: RefCell::new(Vec::new()),
            checksums: m.checksums_enabled(),
            inflight_crc: Cell::new(None),
        }
    }

    /// `shmem_ctx_create`: a sibling context on this PE with its own NIC
    /// channel. The sibling keeps its own completion state (pending set,
    /// coalescing buffers), so its `quiet`/`fence` scope only the ops
    /// issued *on it* — the OpenSHMEM contexts contract — while sharing
    /// the PE's AM handler table and clock. Its arbiter turns park under
    /// its own channel id, keeping tied turns from different channels of
    /// one PE deterministic.
    pub fn create_ctx(&self) -> Ctx<'m> {
        let id = self.next_ctx.get();
        self.next_ctx.set(id + 1);
        let ctx = Self::build(
            self.pe,
            *self.cost.profile(),
            self.opts,
            id,
            Rc::clone(&self.next_ctx),
            Rc::clone(&self.am_handlers),
        );
        ctx.team_scope.set(self.team_scope.get());
        ctx
    }

    /// This context's NIC channel id (0 = primary).
    #[inline]
    pub fn ctx_id(&self) -> u32 {
        self.ctx_id
    }

    /// Team ops on this context are attributed to (0 = world).
    #[inline]
    pub fn team_scope(&self) -> u32 {
        self.team_scope.get()
    }

    /// Scope subsequent ops to `team` for attribution (`change team`);
    /// returns the previous scope so callers can restore it (`end team`).
    pub fn set_team_scope(&self, team: u32) -> u32 {
        self.team_scope.replace(team)
    }

    /// Errors deferred from staged (coalesced) ops whose target died
    /// before the flush; drained by [`Ctx::try_quiet`].
    pub fn deferred_errors(&self) -> usize {
        self.deferred.borrow().len()
    }

    #[inline]
    pub fn pe(&self) -> Pe<'m> {
        self.pe
    }

    #[inline]
    pub fn machine(&self) -> &'m Machine {
        self.pe.machine()
    }

    #[inline]
    pub fn profile(&self) -> &ConduitProfile {
        self.cost.profile()
    }

    #[inline]
    pub fn cost_model(&self) -> &CostModel<'m> {
        &self.cost
    }

    #[inline]
    pub fn options(&self) -> CtxOptions {
        self.opts
    }

    /// Is small-op coalescing active on this context? (Layers above use
    /// this to pick aggregation-friendly algorithms, e.g. the DHT's
    /// active-message update path.)
    #[inline]
    pub fn coalescing(&self) -> bool {
        self.coalescer.is_some()
    }

    /// Hazards detected on this PE so far.
    pub fn hazard_count(&self) -> u64 {
        self.hazards.get()
    }

    fn flag_hazard(&self, h: Hazard) {
        self.hazards.set(self.hazards.get() + 1);
        let m = self.machine();
        Stats::bump(&m.stats().hazards);
        if m.metrics().enabled() {
            m.metrics().count(self.pe.id(), "hazard", Some(m.node_of(h.dst)), 1);
            let team = self.active_team.get();
            if team != 0 {
                m.metrics().count(self.pe.id(), "team_hazard", Some(team as usize), 1);
            }
        }
        if m.san_on() {
            // Mirror the hazard into the sanitizer's structured report sink,
            // classified: a partial overlap can tear, a full overlap is
            // stale-but-whole (quiet missing).
            let op = match h.kind {
                HazardKind::ReadAfterUnquietedWrite => "get",
                HazardKind::WriteAfterUnquietedWrite => "put",
                HazardKind::AmoOverUnquietedWrite => "amo",
            };
            m.san_report(HazardReport {
                kind: if h.torn { SanKind::TornTransfer } else { SanKind::MissingQuiet },
                op,
                accessor: self.pe.id(),
                target: h.dst,
                conflict_pe: self.pe.id(),
                offset: h.offset,
                len: h.len,
                t_conflict: h.pending_complete,
                t_known: self.pe.now(),
            });
        }
        if self.opts.strict_ordering {
            panic!("{h} issued by PE {}", self.pe.id());
        }
    }

    /// Record a completed operation into the tracer (as a span carrying the
    /// flow breakdown) and the metrics registry (counter + latency/queue
    /// histograms keyed by peer node). Both sinks are branch-only no-ops
    /// when their subsystem is disabled.
    fn record_op(
        &self,
        kind: SpanKind,
        begin: u64,
        peer: Option<PeId>,
        bytes: usize,
        detail: FlowDetail,
    ) {
        let m = self.machine();
        let end = self.pe.now();
        let team = self.active_team.get();
        let tracer = m.tracer();
        if tracer.enabled() {
            let mut s = Span::op(self.pe.id(), kind, begin, end, peer, bytes);
            s.queue_ns = detail.queue_ns;
            s.service_ns = detail.service_ns;
            s.remote_begin = detail.remote_begin;
            s.remote_end = detail.remote_end;
            s.team = team;
            tracer.record(s);
        }
        let metrics = m.metrics();
        if metrics.enabled() {
            let me = self.pe.id();
            let peer_node = peer.map(|p| m.node_of(p));
            metrics.count(me, kind.label(), peer_node, 1);
            if bytes > 0 {
                metrics.count(me, "op_bytes", peer_node, bytes as u64);
            }
            metrics.observe(me, latency_metric(kind), peer_node, end.saturating_sub(begin));
            if detail.queue_ns > 0 {
                metrics.observe(me, "nic_queue_ns", peer_node, detail.queue_ns);
            }
            // Per-team breakdown rides in the counter's second dimension
            // (team id instead of peer node). Absent entirely when no team
            // scope is active, so team-free runs keep their exact metric
            // snapshots.
            if team != 0 {
                metrics.count(me, "team_op", Some(team as usize), 1);
            }
        }
    }

    /// [`Self::record_op`] without a flow breakdown (synchronization and
    /// local ops).
    #[inline]
    fn trace(&self, kind: SpanKind, begin: u64, peer: Option<PeId>, bytes: usize) {
        self.record_op(kind, begin, peer, bytes, FlowDetail::default());
    }

    /// Can `dst` be reached with direct loads/stores under the current
    /// options?
    #[inline]
    fn fastpath(&self, dst: PeId) -> bool {
        self.opts.shmem_ptr_fastpath && self.machine().same_node(self.pe.id(), dst)
    }

    // ---- fault injection -------------------------------------------------

    /// Admission gate every message-path operation passes before touching
    /// memory or NICs. On a fault-free machine this is one branch.
    ///
    /// Under a fault plan it rolls the issuing PE's deterministic stream
    /// once per message attempt: a clean draw admits the operation, a
    /// drop/corrupt draw charges the loss-detection timeout plus exponential
    /// backoff to the issuer's *virtual* clock and tries again. The data
    /// movement below the gate happens once, for the attempt that finally
    /// gets through — retries of lost messages cost time, not duplicated
    /// state. Attempts are capped by the plan's [`RetryPolicy`]; exhaustion
    /// and dead targets surface as [`ConduitError`] instead of hanging.
    ///
    /// Staged (coalesced) ops pass the gate at *stage* time, like nbi ops
    /// detect their faults at issue time: the flush itself is then
    /// fault-free, so `quiet` stays infallible and errors surface at the
    /// operation that caused them.
    ///
    /// [`RetryPolicy`]: pgas_machine::RetryPolicy
    fn fault_gate(&self, op: &'static str, target: PeId) -> Result<(), ConduitError> {
        self.fault_gate_payload(op, target, None)
    }

    /// [`Self::fault_gate`] for payload-carrying ops. With end-to-end
    /// checksums enabled, a `Corrupt` draw is *verified*: the receiver-side
    /// CRC32 of a deterministically mangled copy of `payload` is checked
    /// against the sender-side digest, the mismatch is counted as
    /// `payload_corrupt`, and exhaustion surfaces as the typed
    /// [`ConduitError::PayloadCorrupt`]. The draw sequence, backoff charges
    /// and clock movement are bit-identical with checksums off — detection
    /// changes *what the failure is called*, never what it costs.
    fn fault_gate_payload(
        &self,
        op: &'static str,
        target: PeId,
        payload: Option<&[u8]>,
    ) -> Result<(), ConduitError> {
        let m = self.machine();
        if !m.faults_active() {
            return Ok(());
        }
        if m.pe_failed(target) {
            return Err(ConduitError::TargetFailed { op, target });
        }
        let max = m.fault_plan().map_or(u32::MAX, |p| p.retry.max_attempts);
        let me = self.pe.id();
        let stats = m.stats();
        for attempt in 1..=max {
            let Some(kind) = m.fault_draw(me) else {
                return Ok(());
            };
            Stats::bump(&stats.faults_injected);
            // A corruption draw on a checksummed payload is *detected* by
            // verification rather than assumed from link-level feedback:
            // mangle a copy the way the wire would and catch the CRC
            // mismatch. Charges nothing — CRC time is below the simulator's
            // resolution — and draws nothing, so digests don't move.
            let mut verified_corrupt = false;
            let mut label = kind.label();
            if kind == pgas_machine::FaultKind::Corrupt && self.checksums {
                if let Some(data) = payload.filter(|d| !d.is_empty()) {
                    let expect =
                        self.inflight_crc.get().unwrap_or_else(|| crate::integrity::crc32(data));
                    let mut wire = data.to_vec();
                    let flip = (attempt as usize - 1) % wire.len();
                    wire[flip] ^= 0xFF;
                    debug_assert_ne!(crate::integrity::crc32(&wire), expect);
                    if crate::integrity::crc32(&wire) != expect {
                        Stats::bump(&stats.payload_corrupt);
                        verified_corrupt = true;
                        label = "payload-corrupt";
                    }
                }
            }
            let begin = self.pe.now();
            let delay = m.fault_backoff_ns(me, attempt);
            stats.record_fault(FaultEvent {
                pe: me,
                op,
                target,
                kind: label,
                attempt,
                delay_ns: delay,
                at_ns: begin,
            });
            // The sender pays the detection timeout whether it retries or
            // gives up — a lost message is only known lost after the wait.
            self.pe.advance(delay as f64);
            self.trace(SpanKind::Retry, begin, Some(target), 0);
            if attempt == max {
                Stats::bump(&stats.retries_exhausted);
                stats.record_fault(FaultEvent {
                    pe: me,
                    op,
                    target,
                    kind: "exhausted",
                    attempt,
                    delay_ns: 0,
                    at_ns: self.pe.now(),
                });
                return Err(if verified_corrupt {
                    ConduitError::PayloadCorrupt { op, target, attempts: max }
                } else {
                    ConduitError::RetriesExhausted { op, target, attempts: max }
                });
            }
            Stats::bump(&stats.retries);
            if m.pe_failed(target) {
                return Err(ConduitError::TargetFailed { op, target });
            }
        }
        Ok(())
    }

    /// Receive-side half of end-to-end verification: with checksums on,
    /// read the just-applied range back from the target heap and check its
    /// CRC32 against the payload's. Runs inside the target's apply section
    /// (no concurrent applies can interleave) and charges no virtual time.
    /// A mismatch here would mean the *simulator* corrupted data in flight
    /// — injected corruption never reaches this point, the gate catches
    /// and retries it — so it is a hard failure, not a typed error.
    fn verify_applied(&self, dst: PeId, off: usize, data: &[u8]) {
        if !self.checksums || data.is_empty() {
            return;
        }
        let mut back = vec![0u8; data.len()];
        self.machine().heap(dst).read_bytes(off, &mut back);
        assert_eq!(
            crate::integrity::crc32(&back),
            crate::integrity::crc32(data),
            "end-to-end CRC32 mismatch applying {} bytes at PE {dst} offset {off}",
            data.len()
        );
    }

    // ---- the submit choke point ------------------------------------------

    /// Execute one descriptor: the single path every operation takes.
    ///
    /// Dispatch order: if coalescing is active, stage-eligible ops (small
    /// puts off the fastpath, non-fetching AMOs) are absorbed into their
    /// destination node's buffer and return a `staged` receipt; any other
    /// kind first flushes that node's buffer (program order per node, and
    /// read-your-writes, are preserved exactly) and then runs directly.
    pub fn submit(&self, op: OpDesc<'_>) -> Result<OpReceipt, ConduitError> {
        let OpDesc { peer, completion, kind, team, checksum } = op;
        // Attribution context for everything below the descriptor: an
        // explicit per-op team beats the context's scope. Nested submits
        // (strided loops) re-enter with team 0 and inherit the scope, so
        // the attribution stays stable across decomposition.
        self.active_team.set(if team != 0 { team } else { self.team_scope.get() });
        // End-to-end checksum over the outbound payload, computed (or
        // carried in) at submit and verified where the bytes are applied.
        // Charges no virtual time, so enabling checksums moves no digest.
        self.inflight_crc.set(if self.checksums {
            checksum.or_else(|| kind.payload().map(crate::integrity::crc32))
        } else {
            None
        });
        if let Some(c) = &self.coalescer {
            match &kind {
                OpKind::Put { dst_off, src }
                    if !self.fastpath(peer) && c.borrow().put_eligible(src.len()) =>
                {
                    return self.stage_put(peer, *dst_off, src);
                }
                OpKind::Amo { off, op } if !op.is_fetching() => {
                    return self.stage_amo(peer, *off, *op);
                }
                _ => self.flush_node(peer),
            }
        }
        match kind {
            OpKind::Put { dst_off, src } => self
                .do_put(peer, dst_off, src, completion)
                .map(|bytes| OpReceipt { bytes, ..Default::default() }),
            OpKind::Get { src_off, out } => self
                .do_get(peer, src_off, out, completion)
                .map(|bytes| OpReceipt { bytes, ..Default::default() }),
            OpKind::Amo { off, op } => {
                self.do_amo(peer, off, op).map(|value| OpReceipt { value, bytes: 8, staged: false })
            }
            OpKind::StridedPut { dst_off, dst_stride, src, elem, src_stride, nelems } => self
                .do_strided_put(peer, dst_off, dst_stride, src, elem, src_stride, nelems)
                .map(|bytes| OpReceipt { bytes, ..Default::default() }),
            OpKind::StridedGet { src_off, src_stride, out, elem, out_stride, nelems } => self
                .do_strided_get(peer, src_off, src_stride, out, elem, out_stride, nelems)
                .map(|bytes| OpReceipt { bytes, ..Default::default() }),
            OpKind::AmStridedPut { dst_off, dst_stride, src, elem, src_stride, nelems } => self
                .do_am_strided_put(peer, dst_off, dst_stride, src, elem, src_stride, nelems)
                .map(|bytes| OpReceipt { bytes, ..Default::default() }),
            OpKind::AmPutRegions { regions, payload } => self
                .do_am_put_regions(peer, regions, payload)
                .map(|bytes| OpReceipt { bytes, ..Default::default() }),
            OpKind::AmGetRegions { regions, out } => self
                .do_am_get_regions(peer, regions, out)
                .map(|bytes| OpReceipt { bytes, ..Default::default() }),
            OpKind::AmSend { handler, arg } => self
                .do_am(peer, handler, arg, None)
                .map(|bytes| OpReceipt { bytes, ..Default::default() }),
            OpKind::AmCall { handler, arg, reply } => self
                .do_am(peer, handler, arg, Some(reply))
                .map(|bytes| OpReceipt { bytes, ..Default::default() }),
        }
    }

    // ---- coalescing ------------------------------------------------------

    /// Stage a small put into its destination node's buffer.
    fn stage_put(&self, dst: PeId, dst_off: usize, src: &[u8]) -> Result<OpReceipt, ConduitError> {
        let m = self.machine();
        // Faults are drawn at stage time (see `fault_gate`).
        self.fault_gate_payload("put", dst, Some(src))?;
        let node = m.node_of(dst);
        let c = self.coalescer.as_ref().expect("stage_put called without a coalescer");
        // A same-range rewrite merges in place (write combining), growing
        // neither the op count nor the byte total — it skips the capacity
        // check and only an over-age buffer still flushes first.
        let will_merge = c.borrow().can_merge_put(node, dst, dst_off, src.len());
        let (new_ops, new_bytes) = if will_merge { (0, 0) } else { (1, src.len()) };
        if c.borrow().needs_flush_before(node, new_ops, new_bytes, self.pe.now()) {
            let buf = c.borrow_mut().take_node(node);
            if let Some(buf) = buf {
                self.flush_buf(buf);
            }
        }
        Stats::bump(&m.stats().puts);
        Stats::add(&m.stats().bytes_put, src.len() as u64);
        // Staged-vs-staged never hazards (the buffer applies FIFO); only
        // already-flushed in-flight transfers can conflict.
        if let Some(h) = self.pending.borrow().check_put(dst, dst_off, src.len()) {
            self.flag_hazard(h);
        }
        let merged = c.borrow_mut().try_merge_put(node, dst, dst_off, src);
        if !merged {
            c.borrow_mut().push(
                node,
                StagedOp { dst, off: dst_off, payload: StagedPayload::Put(src.to_vec()) },
                self.pe.now(),
            );
        }
        // Only the issue cost lands on the clock now; the wire transfer is
        // charged when the buffer flushes.
        self.pe.advance(self.cost.profile().put_issue_ns);
        Ok(OpReceipt { value: 0, bytes: src.len(), staged: true })
    }

    /// Stage a non-fetching AMO into its destination node's buffer. The
    /// receipt's `value` is 0 — OpenSHMEM gives non-fetching atomics no
    /// result, so nothing is lost.
    fn stage_amo(&self, dst: PeId, off: usize, op: AmoOp) -> Result<OpReceipt, ConduitError> {
        let m = self.machine();
        self.fault_gate("amo", dst)?;
        let node = m.node_of(dst);
        let c = self.coalescer.as_ref().expect("stage_amo called without a coalescer");
        if c.borrow().needs_flush_before(node, 1, 8, self.pe.now()) {
            let buf = c.borrow_mut().take_node(node);
            if let Some(buf) = buf {
                self.flush_buf(buf);
            }
        }
        Stats::bump(&m.stats().amos);
        if let Some(h) = self.pending.borrow().check_amo(dst, off) {
            self.flag_hazard(h);
        }
        c.borrow_mut().push(
            node,
            StagedOp { dst, off, payload: StagedPayload::Amo(op) },
            self.pe.now(),
        );
        self.pe.advance(self.cost.profile().put_issue_ns);
        Ok(OpReceipt { value: 0, bytes: 8, staged: true })
    }

    /// Flush the staged buffer (if any) for `peer`'s node. Called before
    /// every non-stageable op to that node.
    fn flush_node(&self, peer: PeId) {
        let Some(c) = &self.coalescer else { return };
        let node = self.machine().node_of(peer);
        let buf = c.borrow_mut().take_node(node);
        if let Some(buf) = buf {
            self.flush_buf(buf);
        }
    }

    /// Flush every staged buffer, ordered by `(first_enqueue_ns, node)` —
    /// the key the NIC arbiter parks on, so flush order is deterministic.
    /// Called by `quiet`, `fence`, barriers and `wait_until`.
    fn flush_staged(&self) {
        let Some(c) = &self.coalescer else { return };
        let all = c.borrow_mut().take_all();
        for (_node, buf) in all {
            self.flush_buf(buf);
        }
    }

    /// Send one staged buffer as a single wire transfer (payload plus one
    /// AM header per op) and apply its ops FIFO at the target under the
    /// NIC arbiter, exactly at the transfer's remote completion.
    ///
    /// Staged ops whose target PE died after they were staged never reach
    /// the wire: they are dropped from the batch here and surface as
    /// [`ConduitError::TargetFailed`] at the next [`Ctx::try_quiet`] —
    /// staging returned success, so the error has to ride the completion
    /// path, exactly like an nbi put's would. The liveness test is the
    /// *scheduled deadline* against this PE's clock, not the racy failure
    /// flag, so which ops die is a pure function of the plan and the
    /// issuing PE's virtual time.
    fn flush_buf(&self, buf: NodeBuf) {
        let m = self.machine();
        let me = self.pe.id();
        let mut buf = buf;
        if m.faults_active() {
            let now = self.pe.now();
            let mut deferred = self.deferred.borrow_mut();
            buf.ops.retain(|o| {
                if m.pe_dead_at(o.dst, now) {
                    let op = match &o.payload {
                        StagedPayload::Put(_) => "put",
                        StagedPayload::Amo(_) => "amo",
                    };
                    deferred.push(ConduitError::TargetFailed { op, target: o.dst });
                    false
                } else {
                    true
                }
            });
            if buf.ops.is_empty() {
                return; // the whole batch targeted dead PEs
            }
            buf.total_bytes = buf.ops.iter().map(|o| o.write_range().1).sum();
        }
        let nops = buf.ops.len();
        let wire_bytes = buf.total_bytes + AM_HEADER_BYTES * nops;
        let rep_dst = buf.ops[0].dst;
        // Deliveries to every PE in the buffer must stay ordered after
        // earlier in-flight transfers to them.
        let floor = {
            let p = self.pending.borrow();
            buf.ops.iter().map(|o| p.floor_for(o.dst)).max().unwrap_or(0)
        };
        let t_begin = self.pe.now();
        let mut detail = FlowDetail::default();
        let t = self.cost.coalesced_flush(
            me,
            rep_dst,
            wire_bytes,
            nops,
            t_begin,
            floor,
            Some(&mut detail),
        );
        // Apply under the arbiter, keyed at the instant the batch lands:
        // tied flushes from different PEs (released by the same barrier)
        // apply in deterministic order, like tied AMOs.
        m.nic_turn_ctx(me, self.ctx_id, t.remote_complete, || {
            for op in &buf.ops {
                m.apply_and_notify(op.dst, || match &op.payload {
                    StagedPayload::Put(data) => {
                        m.heap(op.dst).write_bytes(op.off, data);
                        self.verify_applied(op.dst, op.off, data);
                        m.heap(op.dst).stamp_range(op.off, data.len(), t.remote_complete);
                        m.san_record_write(
                            op.dst,
                            op.off,
                            data.len(),
                            me,
                            t.remote_complete,
                            false,
                            "put",
                        );
                    }
                    StagedPayload::Amo(a) => {
                        amo_word(m.heap(op.dst).atomic64(op.off), *a);
                        m.heap(op.dst).stamp_range(op.off, 8, t.remote_complete);
                        m.san_record_write(op.dst, op.off, 8, me, t.remote_complete, true, "amo");
                    }
                });
            }
        });
        m.lift_clock(me, t.local_complete);
        {
            let mut p = self.pending.borrow_mut();
            for op in &buf.ops {
                let (off, len) = op.write_range();
                match &op.payload {
                    StagedPayload::Put(_) => p.record_put(op.dst, off, len, t.remote_complete),
                    StagedPayload::Amo(_) => p.record_amo(op.dst, off, t.remote_complete),
                }
            }
        }
        // One span for the whole batch; the staged ops recorded none.
        self.record_op(SpanKind::Put, t_begin, Some(rep_dst), wire_bytes, detail);
    }

    // ---- operation bodies (one per OpKind; shims below build OpDescs) ----

    /// Contiguous put. `Completion` picks what lands on the clock at the
    /// end: blocking lifts to local completion, nbi charges only the issue
    /// cost. Everything before that point is completion-independent, so
    /// `put` and `put_nbi` share one body.
    fn do_put(
        &self,
        dst: PeId,
        dst_off: usize,
        src: &[u8],
        completion: Completion,
    ) -> Result<usize, ConduitError> {
        let m = self.machine();
        if !self.fastpath(dst) {
            // Direct loads/stores cannot be dropped; only the message path
            // passes the gate.
            self.fault_gate_payload("put", dst, Some(src))?;
        }
        let t_begin = self.pe.now();
        Stats::bump(&m.stats().puts);
        Stats::add(&m.stats().bytes_put, src.len() as u64);
        if self.fastpath(dst) {
            Stats::bump(&m.stats().local_fastpath);
            let t = self.cost.local_copy(src.len(), self.pe.now());
            // Publish through the same critical section AMOs use: the word
            // update, its stamp, the sanitizer record and the waiter wake-up
            // are one atomic step, and under the NIC arbiter the target's
            // `wait_on` quiescence is withdrawn in the same section. A bare
            // `notify_pe` after an unguarded write would let the arbiter
            // observe the waiter as quiescent *after* its release condition
            // became true — granting or withholding tied turns depending on
            // host scheduling.
            m.apply_and_notify(dst, || {
                m.heap(dst).write_bytes(dst_off, src);
                m.heap(dst).stamp_range(dst_off, src.len(), t);
                m.san_record_write(dst, dst_off, src.len(), self.pe.id(), t, false, "put");
            });
            m.lift_clock(self.pe.id(), t);
            self.trace(SpanKind::Put, t_begin, Some(dst), src.len());
            return Ok(src.len());
        }
        if let Some(h) = self.pending.borrow().check_put(dst, dst_off, src.len()) {
            self.flag_hazard(h);
        }
        let floor = self.pending.borrow().floor_for(dst);
        let mut detail = FlowDetail::default();
        let t =
            self.cost.put(self.pe.id(), dst, src.len(), self.pe.now(), floor, Some(&mut detail));
        // Write + stamp + wake as one critical section (see the fastpath
        // comment above): keeps put-released `wait_on` wakes deterministic
        // under the arbiter.
        m.apply_and_notify(dst, || {
            m.heap(dst).write_bytes(dst_off, src);
            self.verify_applied(dst, dst_off, src);
            m.heap(dst).stamp_range(dst_off, src.len(), t.remote_complete);
            m.san_record_write(
                dst,
                dst_off,
                src.len(),
                self.pe.id(),
                t.remote_complete,
                false,
                "put",
            );
        });
        match completion {
            Completion::Blocking => {
                m.lift_clock(self.pe.id(), t.local_complete);
            }
            // Only the issue cost lands on the clock; completion waits in
            // the pending set. (The NIC reservations above still model
            // contention.) An nbi op's injected faults were detected and
            // retried at issue time above — same total cost, deterministic.
            Completion::Nbi => {
                self.pe.advance(self.cost.profile().put_issue_ns);
            }
        }
        self.pending.borrow_mut().record_put(dst, dst_off, src.len(), t.remote_complete);
        self.record_op(SpanKind::Put, t_begin, Some(dst), src.len(), detail);
        Ok(src.len())
    }

    /// Contiguous get: blocking lifts past the data's stamp, nbi defers
    /// validity to `quiet` via the pending set.
    fn do_get(
        &self,
        dst: PeId,
        src_off: usize,
        out: &mut [u8],
        completion: Completion,
    ) -> Result<usize, ConduitError> {
        let m = self.machine();
        if !self.fastpath(dst) {
            self.fault_gate("get", dst)?;
        }
        let t_begin = self.pe.now();
        Stats::bump(&m.stats().gets);
        Stats::add(&m.stats().bytes_get, out.len() as u64);
        if self.fastpath(dst) {
            Stats::bump(&m.stats().local_fastpath);
            let t = self.cost.local_copy(out.len(), self.pe.now());
            m.heap(dst).read_bytes(src_off, out);
            let stamp = m.heap(dst).max_stamp(src_off, out.len());
            m.san_check_read(dst, src_off, out.len(), self.pe.id(), "get");
            m.lift_clock(self.pe.id(), t.max(stamp));
            self.trace(SpanKind::Get, t_begin, Some(dst), out.len());
            return Ok(out.len());
        }
        if let Some(h) = self.pending.borrow().check_get(dst, src_off, out.len()) {
            self.flag_hazard(h);
        }
        let mut detail = FlowDetail::default();
        let done = self.cost.get(self.pe.id(), dst, out.len(), self.pe.now(), Some(&mut detail));
        m.heap(dst).read_bytes(src_off, out);
        let stamp = m.heap(dst).max_stamp(src_off, out.len());
        m.san_check_read(dst, src_off, out.len(), self.pe.id(), "get");
        match completion {
            Completion::Blocking => {
                m.lift_clock(self.pe.id(), done.max(stamp));
            }
            Completion::Nbi => {
                self.pe.advance(self.cost.profile().get_issue_ns);
                self.pending.borrow_mut().record_nbi_get(done.max(stamp));
            }
        }
        self.record_op(SpanKind::Get, t_begin, Some(dst), out.len(), detail);
        Ok(out.len())
    }

    /// Remote atomic on an 8-byte word; returns the previous value.
    fn do_amo(&self, dst: PeId, off: usize, op: AmoOp) -> Result<u64, ConduitError> {
        let m = self.machine();
        self.fault_gate("amo", dst)?;
        let t_begin = self.pe.now();
        Stats::bump(&m.stats().amos);
        if let Some(h) = self.pending.borrow().check_amo(dst, off) {
            self.flag_hazard(h);
        }
        // A fetching atomic observes the last writer of the word — that is
        // the happens-before edge lock handoffs are built on.
        if op.is_fetching() {
            m.san_sync_edge(self.pe.id(), dst, off);
        }
        let mut detail = FlowDetail::default();
        let t =
            self.cost.amo(self.pe.id(), dst, op.is_fetching(), self.pe.now(), Some(&mut detail));
        // Apply the atomic under the arbiter, keyed at the instant it takes
        // effect on the target word. Tied RMWs — think MCS tail swaps from
        // images released by the same barrier, which all compute the same
        // `remote_complete` — would otherwise apply in host-scheduling
        // order, and the fetched value (the queue position) is exactly what
        // a lock probe's digest hangs on. Intra-node AMOs reserve no NIC
        // lane, so this is their only arbiter turn. Causality: a fetched
        // value cannot be observed before the write that produced it
        // completed, hence the stamp read inside the same turn.
        let (old, prior_stamp) =
            m.nic_turn_ctx(self.pe.id(), self.ctx_id, t.remote_complete, || {
                // `apply_and_notify` makes the word update, its stamp, and the
                // waiter wake-up one critical section — a `wait_on` waiter can
                // only observe this AMO after its quiescence was withdrawn,
                // keeping the arbiter's view of the waiter conclusive.
                m.apply_and_notify(dst, || {
                    let prior_stamp = m.heap(dst).max_stamp(off, 8);
                    let old = amo_word(m.heap(dst).atomic64(off), op);
                    m.heap(dst).stamp_range(off, 8, t.remote_complete);
                    if !matches!(op, AmoOp::Fetch) {
                        // Record before waking: a waiter released by this AMO
                        // derives its happens-before edge from the sanitizer's
                        // view of this write.
                        m.san_record_write(
                            dst,
                            off,
                            8,
                            self.pe.id(),
                            t.remote_complete,
                            true,
                            "amo",
                        );
                    }
                    (old, prior_stamp)
                })
            });
        if op.is_fetching() {
            m.lift_clock(self.pe.id(), t.local_complete.max(prior_stamp));
        } else {
            m.lift_clock(self.pe.id(), t.local_complete);
            self.pending.borrow_mut().record_amo(dst, off, t.remote_complete);
        }
        // No trailing notify: `apply_and_notify` above already woke waiters
        // in the same critical section as the word update.
        self.record_op(SpanKind::Amo, t_begin, Some(dst), 8, detail);
        Ok(old)
    }

    /// Strided put: one native wire descriptor on NIC-native profiles, a
    /// per-element loop of `submit`ted puts otherwise (where each element
    /// coalesces like any other small put).
    #[allow(clippy::too_many_arguments)] // mirrors the C shmem_iput signature
    fn do_strided_put(
        &self,
        dst: PeId,
        dst_off: usize,
        dst_stride: usize,
        src: &[u8],
        elem: usize,
        src_stride: usize,
        nelems: usize,
    ) -> Result<usize, ConduitError> {
        if nelems == 0 {
            return Ok(0);
        }
        if !self.profile().has_native_strided() || self.fastpath(dst) {
            for i in 0..nelems {
                let s = i * src_stride * elem;
                self.submit(OpDesc::new(
                    dst,
                    OpKind::Put {
                        dst_off: dst_off + i * dst_stride * elem,
                        src: &src[s..s + elem],
                    },
                ))?;
            }
            return Ok(nelems * elem);
        }
        let m = self.machine();
        self.fault_gate_payload("iput", dst, Some(src))?;
        Stats::bump(&m.stats().puts);
        Stats::add(&m.stats().bytes_put, (nelems * elem) as u64);
        let floor = self.pending.borrow().floor_for(dst);
        let t_begin = self.pe.now();
        let mut detail = FlowDetail::default();
        let t = self
            .cost
            .strided_put_native(self.pe.id(), dst, nelems, elem, t_begin, floor, Some(&mut detail))
            .expect("checked native above");
        m.apply_and_notify(dst, || {
            for i in 0..nelems {
                let s = i * src_stride * elem;
                let d = dst_off + i * dst_stride * elem;
                m.heap(dst).write_bytes(d, &src[s..s + elem]);
                m.heap(dst).stamp_range(d, elem, t.remote_complete);
                m.san_record_write(dst, d, elem, self.pe.id(), t.remote_complete, false, "iput");
            }
        });
        m.lift_clock(self.pe.id(), t.local_complete);
        self.record_op(SpanKind::Put, t_begin, Some(dst), nelems * elem, detail);
        // Conservative span for ordering tracking: covers the gaps too. The
        // CAF runtime quiets after every statement, so false positives from
        // the gaps cannot accumulate.
        let span = (nelems - 1) * dst_stride * elem + elem;
        self.pending.borrow_mut().record_put(dst, dst_off, span, t.remote_complete);
        Ok(nelems * elem)
    }

    /// Strided get: the mirror of [`Self::do_strided_put`].
    #[allow(clippy::too_many_arguments)] // mirrors the C shmem_iget signature
    fn do_strided_get(
        &self,
        dst: PeId,
        src_off: usize,
        src_stride: usize,
        out: &mut [u8],
        elem: usize,
        out_stride: usize,
        nelems: usize,
    ) -> Result<usize, ConduitError> {
        if nelems == 0 {
            return Ok(0);
        }
        if !self.profile().has_native_strided() || self.fastpath(dst) {
            for i in 0..nelems {
                let d = i * out_stride * elem;
                self.submit(OpDesc::new(
                    dst,
                    OpKind::Get {
                        src_off: src_off + i * src_stride * elem,
                        out: &mut out[d..d + elem],
                    },
                ))?;
            }
            return Ok(nelems * elem);
        }
        let m = self.machine();
        self.fault_gate("iget", dst)?;
        Stats::bump(&m.stats().gets);
        Stats::add(&m.stats().bytes_get, (nelems * elem) as u64);
        let t_begin = self.pe.now();
        let done = self
            .cost
            .strided_get_native(self.pe.id(), dst, nelems, elem, t_begin, None)
            .expect("checked native above");
        let mut stamp = 0;
        for i in 0..nelems {
            let s = src_off + i * src_stride * elem;
            let d = i * out_stride * elem;
            m.heap(dst).read_bytes(s, &mut out[d..d + elem]);
            stamp = stamp.max(m.heap(dst).max_stamp(s, elem));
            m.san_check_read(dst, s, elem, self.pe.id(), "iget");
        }
        m.lift_clock(self.pe.id(), done.max(stamp));
        self.trace(SpanKind::Get, t_begin, Some(dst), nelems * elem);
        Ok(nelems * elem)
    }

    /// AM-packed strided put (one contiguous message, unpacked by a
    /// software handler at the target — GASNet's VIS path).
    #[allow(clippy::too_many_arguments)] // mirrors the C shmem_iput signature
    fn do_am_strided_put(
        &self,
        dst: PeId,
        dst_off: usize,
        dst_stride: usize,
        src: &[u8],
        elem: usize,
        src_stride: usize,
        nelems: usize,
    ) -> Result<usize, ConduitError> {
        if nelems == 0 {
            return Ok(0);
        }
        let m = self.machine();
        self.fault_gate_payload("am put", dst, Some(src))?;
        Stats::bump(&m.stats().puts);
        Stats::add(&m.stats().bytes_put, (nelems * elem) as u64);
        let floor = self.pending.borrow().floor_for(dst);
        let t_begin = self.pe.now();
        let mut detail = FlowDetail::default();
        let t = self.cost.am_packed_put(
            self.pe.id(),
            dst,
            nelems,
            elem,
            t_begin,
            floor,
            Some(&mut detail),
        );
        m.apply_and_notify(dst, || {
            for i in 0..nelems {
                let s = i * src_stride * elem;
                let d = dst_off + i * dst_stride * elem;
                m.heap(dst).write_bytes(d, &src[s..s + elem]);
                m.heap(dst).stamp_range(d, elem, t.remote_complete);
                m.san_record_write(dst, d, elem, self.pe.id(), t.remote_complete, false, "am put");
            }
        });
        m.lift_clock(self.pe.id(), t.local_complete);
        let span = (nelems - 1) * dst_stride * elem + elem;
        self.pending.borrow_mut().record_put(dst, dst_off, span, t.remote_complete);
        self.record_op(SpanKind::Put, t_begin, Some(dst), nelems * elem, detail);
        Ok(nelems * elem)
    }

    /// AM-packed scatter-put of arbitrary regions.
    fn do_am_put_regions(
        &self,
        dst: PeId,
        regions: &[(usize, usize)],
        payload: &[u8],
    ) -> Result<usize, ConduitError> {
        if regions.is_empty() {
            return Ok(0);
        }
        let total: usize = regions.iter().map(|r| r.1).sum();
        let m = self.machine();
        self.fault_gate_payload("am put", dst, Some(payload))?;
        Stats::bump(&m.stats().puts);
        Stats::add(&m.stats().bytes_put, total as u64);
        let lo = regions.iter().map(|r| r.0).min().unwrap_or(0);
        let hi = regions.iter().map(|r| r.0 + r.1).max().unwrap_or(0);
        let floor = self.pending.borrow().floor_for(dst);
        let avg = (total / regions.len()).max(1);
        let t_begin = self.pe.now();
        let mut detail = FlowDetail::default();
        let t = self.cost.am_packed_put(
            self.pe.id(),
            dst,
            regions.len(),
            avg,
            t_begin,
            floor,
            Some(&mut detail),
        );
        m.apply_and_notify(dst, || {
            let mut cursor = 0;
            for &(off, len) in regions {
                m.heap(dst).write_bytes(off, &payload[cursor..cursor + len]);
                m.heap(dst).stamp_range(off, len, t.remote_complete);
                m.san_record_write(dst, off, len, self.pe.id(), t.remote_complete, false, "am put");
                cursor += len;
            }
        });
        m.lift_clock(self.pe.id(), t.local_complete);
        self.pending.borrow_mut().record_put(dst, lo, hi - lo, t.remote_complete);
        self.record_op(SpanKind::Put, t_begin, Some(dst), total, detail);
        Ok(total)
    }

    /// AM-packed gather-get of arbitrary regions.
    fn do_am_get_regions(
        &self,
        dst: PeId,
        regions: &[(usize, usize)],
        out: &mut [u8],
    ) -> Result<usize, ConduitError> {
        if regions.is_empty() {
            return Ok(0);
        }
        let total: usize = regions.iter().map(|r| r.1).sum();
        let m = self.machine();
        self.fault_gate("am get", dst)?;
        Stats::bump(&m.stats().gets);
        Stats::add(&m.stats().bytes_get, total as u64);
        let avg = (total / regions.len()).max(1);
        let t_begin = self.pe.now();
        let done = self.cost.am_packed_get(self.pe.id(), dst, regions.len(), avg, t_begin, None);
        let mut cursor = 0;
        let mut stamp = 0;
        for &(off, len) in regions {
            m.heap(dst).read_bytes(off, &mut out[cursor..cursor + len]);
            stamp = stamp.max(m.heap(dst).max_stamp(off, len));
            m.san_check_read(dst, off, len, self.pe.id(), "am get");
            cursor += len;
        }
        m.lift_clock(self.pe.id(), done.max(stamp));
        self.trace(SpanKind::Get, t_begin, Some(dst), total);
        Ok(total)
    }

    /// Active-message request: one wire transfer carries `arg` to `dst`,
    /// where the registered handler runs under the target's critical
    /// section (on this thread — see [`crate::am`] for why that is sound).
    /// With `reply_out`, blocks for the handler's reply (one more wire
    /// leg); without it, the handler's writes complete at `quiet` like a
    /// put's.
    fn do_am(
        &self,
        dst: PeId,
        handler: AmHandlerId,
        arg: &[u8],
        reply_out: Option<&mut Vec<u8>>,
    ) -> Result<usize, ConduitError> {
        let m = self.machine();
        let h = self
            .am_handlers
            .borrow()
            .get(handler.0)
            .cloned()
            .expect("active-message handler not registered on this context");
        self.fault_gate_payload("am", dst, Some(arg))?;
        let t_begin = self.pe.now();
        Stats::bump(&m.stats().ams);
        let floor = self.pending.borrow().floor_for(dst);
        let mut detail = FlowDetail::default();
        let t = self.cost.am_request(
            self.pe.id(),
            dst,
            arg.len(),
            h.compute_ns(arg),
            t_begin,
            floor,
            Some(&mut detail),
        );
        // A target that dies before the handler would run can never execute
        // it, ack it, or reply — without a timeout an `am_call` would block
        // forever. The test is the scheduled deadline against the virtual
        // instant the handler *would* execute, a pure function of the plan
        // and this PE's clock, so detection is deterministic under any
        // worker count. The sender pays the full retry chain of reply
        // timeouts before concluding the target is gone.
        if m.pe_dead_at(dst, t.executed) {
            return Err(self.am_reply_timeout(dst));
        }
        let mut target = AmTarget::new(m, dst);
        let mut reply = None;
        // Execute under the arbiter at the instant the handler's effects
        // land, inside the target's critical section: tied AMs apply in
        // deterministic order and waiters wake in the same atomic step —
        // the discipline remote atomics use.
        m.nic_turn_ctx(self.pe.id(), self.ctx_id, t.executed, || {
            m.apply_and_notify(dst, || {
                reply = h.execute(&mut target, arg);
                for &(off, len) in &target.writes {
                    m.heap(dst).stamp_range(off, len, t.executed);
                    m.san_record_write(dst, off, len, self.pe.id(), t.executed, true, "am");
                }
            });
        });
        // A handler write over this PE's own un-quieted *plain* put is the
        // same WAW hazard a direct put would be; pending atomics (AMOs and
        // other handlers' writes) may legally race it — the target's apply
        // section serializes them. (Checked after execution — only the
        // handler knows what it writes.)
        for &(off, len) in &target.writes {
            if let Some(haz) = self.pending.borrow().check_atomic_range(dst, off, len) {
                self.flag_hazard(haz);
            }
        }
        match reply_out {
            Some(out) => {
                // am_call: block for the reply; reading the target's state
                // through the handler is a happens-before edge, like a
                // fetching AMO's.
                let r = reply.unwrap_or_default();
                let done =
                    self.cost.am_reply(self.pe.id(), dst, r.len(), t.executed, Some(&mut detail));
                for &(off, _len) in &target.reads {
                    m.san_sync_edge(self.pe.id(), dst, off);
                }
                m.lift_clock(self.pe.id(), done);
                *out = r;
            }
            None => {
                // am_send: fire-and-forget; the handler's writes become
                // *atomic* completion obligations — quiet still waits for
                // them, but later handlers/AMOs may legally overlap them.
                m.lift_clock(self.pe.id(), t.local_complete);
                let mut p = self.pending.borrow_mut();
                for &(off, len) in &target.writes {
                    p.record_am_write(dst, off, len, t.executed);
                }
            }
        }
        self.record_op(SpanKind::Amo, t_begin, Some(dst), AM_HEADER_BYTES + arg.len(), detail);
        Ok(arg.len())
    }

    /// Charge the retry chain of reply timeouts for an active message whose
    /// target died before execution, then surface the loss. Each attempt
    /// costs the same detection timeout + backoff a dropped message would;
    /// exhaustion is what finally lets the sender conclude `TargetFailed`
    /// instead of blocking forever on a reply that cannot come.
    fn am_reply_timeout(&self, dst: PeId) -> ConduitError {
        let m = self.machine();
        let me = self.pe.id();
        let stats = m.stats();
        let max = m.fault_plan().map_or(1, |p| p.retry.max_attempts);
        for attempt in 1..=max {
            let begin = self.pe.now();
            let delay = m.fault_backoff_ns(me, attempt);
            stats.record_fault(FaultEvent {
                pe: me,
                op: "am",
                target: dst,
                kind: "reply-timeout",
                attempt,
                delay_ns: delay,
                at_ns: begin,
            });
            self.pe.advance(delay as f64);
            self.trace(SpanKind::Retry, begin, Some(dst), 0);
            if attempt == max {
                Stats::bump(&stats.retries_exhausted);
            } else {
                Stats::bump(&stats.retries);
            }
        }
        ConduitError::TargetFailed { op: "am", target: dst }
    }

    // ---- active-message registration & entry points ----------------------

    /// Register an active-message handler. Registration must be
    /// SPMD-symmetric (every PE registers the same handlers in the same
    /// order), exactly like symmetric heap allocation — the returned id
    /// then names the same logic on every PE.
    pub fn register_am(&self, handler: Rc<dyn AmHandler>) -> AmHandlerId {
        let mut hs = self.am_handlers.borrow_mut();
        hs.push(handler);
        AmHandlerId(hs.len() - 1)
    }

    /// One-way active message: run `handler` at `dst` with `arg`; any reply
    /// is discarded. Completes remotely at `quiet`. Panics if a fault plan
    /// kills the delivery; use [`Self::try_am_send`] to handle that.
    pub fn am_send(&self, dst: PeId, handler: AmHandlerId, arg: &[u8]) {
        unwrap_infallible(self.submit(OpDesc::new(dst, OpKind::AmSend { handler, arg })));
    }

    /// Fallible [`Self::am_send`].
    pub fn try_am_send(
        &self,
        dst: PeId,
        handler: AmHandlerId,
        arg: &[u8],
    ) -> Result<(), ConduitError> {
        self.submit(OpDesc::new(dst, OpKind::AmSend { handler, arg })).map(|_| ())
    }

    /// Round-trip active message: run `handler` at `dst` and block for its
    /// reply. Panics if a fault plan kills the delivery; use
    /// [`Self::try_am_call`] to handle that.
    pub fn am_call(&self, dst: PeId, handler: AmHandlerId, arg: &[u8]) -> Vec<u8> {
        unwrap_infallible(self.try_am_call(dst, handler, arg))
    }

    /// Fallible [`Self::am_call`].
    pub fn try_am_call(
        &self,
        dst: PeId,
        handler: AmHandlerId,
        arg: &[u8],
    ) -> Result<Vec<u8>, ConduitError> {
        let mut reply = Vec::new();
        self.submit(OpDesc::new(dst, OpKind::AmCall { handler, arg, reply: &mut reply }))?;
        Ok(reply)
    }

    // ---- contiguous RMA --------------------------------------------------

    /// One-sided write of `src` into `dst`'s heap at `dst_off`
    /// (`shmem_putmem`). Returns after local completion. Panics if a fault
    /// plan kills the delivery; use [`Self::try_put`] to handle that.
    pub fn put(&self, dst: PeId, dst_off: usize, src: &[u8]) {
        unwrap_infallible(self.try_put(dst, dst_off, src));
    }

    /// Fallible [`Self::put`]: surfaces dead targets and retry exhaustion
    /// instead of panicking. `Ok` means the data landed (possibly after
    /// fault-injected retries charged to this PE's virtual clock) or was
    /// staged for a coalesced flush.
    pub fn try_put(&self, dst: PeId, dst_off: usize, src: &[u8]) -> Result<(), ConduitError> {
        self.submit(OpDesc::new(dst, OpKind::Put { dst_off, src })).map(|_| ())
    }

    /// One-sided read of `dst`'s heap at `src_off` into `out`
    /// (`shmem_getmem`). Blocking. Panics if a fault plan kills the
    /// delivery; use [`Self::try_get`] to handle that.
    pub fn get(&self, dst: PeId, src_off: usize, out: &mut [u8]) {
        unwrap_infallible(self.try_get(dst, src_off, out));
    }

    /// Fallible [`Self::get`]: surfaces dead targets and retry exhaustion
    /// instead of panicking. On `Err`, `out` is untouched.
    pub fn try_get(&self, dst: PeId, src_off: usize, out: &mut [u8]) -> Result<(), ConduitError> {
        self.submit(OpDesc::new(dst, OpKind::Get { src_off, out })).map(|_| ())
    }

    /// Non-blocking put (`shmem_putmem_nbi`): returns after issue; even
    /// *local* completion (source-buffer reuse) is only guaranteed after
    /// `quiet`. (We copy eagerly, so buffer reuse is physically safe here —
    /// the semantics difference shows up purely in the virtual clock.)
    pub fn put_nbi(&self, dst: PeId, dst_off: usize, src: &[u8]) {
        unwrap_infallible(self.submit(OpDesc::new(dst, OpKind::Put { dst_off, src }).nbi()));
    }

    /// Non-blocking get (`shmem_getmem_nbi`): the data in `out` is only
    /// guaranteed valid after `quiet`.
    pub fn get_nbi(&self, dst: PeId, src_off: usize, out: &mut [u8]) {
        unwrap_infallible(self.submit(OpDesc::new(dst, OpKind::Get { src_off, out }).nbi()));
    }

    // ---- 1-D strided RMA (`shmem_iput` / `shmem_iget`) -------------------

    /// Strided write (`shmem_iput`): element `i` of `src` — elements are
    /// `elem` bytes, read at a stride of `src_stride` *elements* — is written
    /// to `dst_off + i * dst_stride * elem` in `dst`'s heap.
    ///
    /// On NIC-native profiles (Cray SHMEM) this is one wire descriptor; on
    /// loop profiles (MVAPICH2-X SHMEM, GASNet, MPI-3) it degenerates to
    /// `nelems` contiguous puts — exactly the dichotomy §V of the paper
    /// measures.
    #[allow(clippy::too_many_arguments)] // mirrors the C shmem_iput signature
    pub fn iput(
        &self,
        dst: PeId,
        dst_off: usize,
        dst_stride: usize,
        src: &[u8],
        elem: usize,
        src_stride: usize,
        nelems: usize,
    ) {
        assert!(
            elem > 0 && dst_stride > 0 && src_stride > 0,
            "strides and element size must be positive"
        );
        if nelems == 0 {
            return;
        }
        assert!(
            src.len() >= ((nelems - 1) * src_stride + 1) * elem,
            "source slice too short for iput: need {} have {}",
            ((nelems - 1) * src_stride + 1) * elem,
            src.len()
        );
        unwrap_infallible(self.submit(OpDesc::new(
            dst,
            OpKind::StridedPut { dst_off, dst_stride, src, elem, src_stride, nelems },
        )));
    }

    /// Strided read (`shmem_iget`): the mirror of [`Self::iput`]. Element `i`
    /// is read from `src_off + i * src_stride * elem` of `dst`'s heap into
    /// `out[i * out_stride * elem ..]`.
    #[allow(clippy::too_many_arguments)] // mirrors the C shmem_iput signature
    pub fn iget(
        &self,
        dst: PeId,
        src_off: usize,
        src_stride: usize,
        out: &mut [u8],
        elem: usize,
        out_stride: usize,
        nelems: usize,
    ) {
        assert!(
            elem > 0 && src_stride > 0 && out_stride > 0,
            "strides and element size must be positive"
        );
        if nelems == 0 {
            return;
        }
        assert!(
            out.len() >= ((nelems - 1) * out_stride + 1) * elem,
            "output slice too short for iget"
        );
        unwrap_infallible(self.submit(OpDesc::new(
            dst,
            OpKind::StridedGet { src_off, src_stride, out, elem, out_stride, nelems },
        )));
    }

    /// AM-packed strided put: pack the elements into one contiguous message,
    /// unpacked by a software handler at the target. Models GASNet's VIS
    /// path (the "with-AM" legend of the paper's Himeno figure).
    #[allow(clippy::too_many_arguments)] // mirrors the C shmem_iput signature
    pub fn am_strided_put(
        &self,
        dst: PeId,
        dst_off: usize,
        dst_stride: usize,
        src: &[u8],
        elem: usize,
        src_stride: usize,
        nelems: usize,
    ) {
        assert!(
            elem > 0 && dst_stride > 0 && src_stride > 0,
            "strides and element size must be positive"
        );
        if nelems == 0 {
            return;
        }
        assert!(
            src.len() >= ((nelems - 1) * src_stride + 1) * elem,
            "source slice too short for am_strided_put"
        );
        unwrap_infallible(self.submit(OpDesc::new(
            dst,
            OpKind::AmStridedPut { dst_off, dst_stride, src, elem, src_stride, nelems },
        )));
    }

    /// AM-packed scatter-put of arbitrary regions: `payload` travels as one
    /// contiguous message; a software handler at the target writes each
    /// `(offset, len)` region in order, consuming the payload front to back.
    /// Models GASNet's VIS interface for general multi-dimensional sections.
    pub fn am_put_regions(&self, dst: PeId, regions: &[(usize, usize)], payload: &[u8]) {
        let total: usize = regions.iter().map(|r| r.1).sum();
        assert_eq!(total, payload.len(), "payload must exactly cover the regions");
        if regions.is_empty() {
            return;
        }
        unwrap_infallible(self.submit(OpDesc::new(dst, OpKind::AmPutRegions { regions, payload })));
    }

    /// AM-packed gather-get of arbitrary regions into `out` (front to back).
    pub fn am_get_regions(&self, dst: PeId, regions: &[(usize, usize)], out: &mut [u8]) {
        let total: usize = regions.iter().map(|r| r.1).sum();
        assert_eq!(total, out.len(), "output must exactly cover the regions");
        if regions.is_empty() {
            return;
        }
        unwrap_infallible(self.submit(OpDesc::new(dst, OpKind::AmGetRegions { regions, out })));
    }

    // ---- remote atomics ----------------------------------------------------

    /// Execute a remote atomic on the 8-byte word at `off` of `dst`'s heap.
    /// Returns the previous value (meaningful for fetching ops). Panics if
    /// a fault plan kills the delivery; use [`Self::try_amo`] to handle
    /// that.
    pub fn amo(&self, dst: PeId, off: usize, op: AmoOp) -> u64 {
        unwrap_infallible(self.try_amo(dst, off, op))
    }

    /// Fallible [`Self::amo`]: surfaces dead targets and retry exhaustion
    /// instead of panicking. On `Err` the word was not touched. Under
    /// coalescing, a staged non-fetching AMO returns `Ok(0)` — OpenSHMEM
    /// defines no result for non-fetching atomics, so callers never read
    /// it.
    pub fn try_amo(&self, dst: PeId, off: usize, op: AmoOp) -> Result<u64, ConduitError> {
        self.submit(OpDesc::new(dst, OpKind::Amo { off, op })).map(|r| r.value)
    }

    /// Account for `polls` remote polling messages against `dst`'s NIC
    /// starting now (without moving this PE's clock).
    ///
    /// Spin-based locks poll a remote word while they wait. In this hybrid
    /// simulator the *number of physical retries* depends on OS scheduling,
    /// not virtual time, so waiters reconstruct the polls their virtual wait
    /// implies and charge them here — that contention pressure on the lock
    /// home's NIC is precisely what queue-based (MCS) locks eliminate.
    pub fn charge_poll_traffic(&self, dst: PeId, polls: u64) {
        if polls == 0 || self.machine().same_node(self.pe.id(), dst) {
            return;
        }
        let m = self.machine();
        Stats::add(&m.stats().amos, polls);
        if m.metrics().enabled() {
            m.metrics().count(self.pe.id(), "lock_poll", Some(m.node_of(dst)), polls);
        }
        let occ = self.cost.control_msg_occupancy_ns().round() as u64;
        let nic = m.nic(m.node_of(dst));
        let now = self.pe.now();
        m.nic_turn_ctx(self.pe.id(), self.ctx_id, now, || {
            for _ in 0..polls {
                nic.reserve_rx(now, occ, 8);
            }
        });
    }

    // ---- waiting -----------------------------------------------------------

    /// `shmem_wait_until` on an 8-byte word of this PE's *own* heap: block
    /// until `pred(value)` holds. The clock is lifted past the satisfying
    /// writer's completion time.
    pub fn wait_until(&self, off: usize, mut pred: impl FnMut(u64) -> bool) -> u64 {
        // Blocking with ops still staged would deadlock in *real* time: a
        // peer may be spinning on data sitting in one of our buffers (the
        // MCS chain write is exactly this shape). Flush everything first.
        self.flush_staged();
        let m = self.machine();
        let me = self.pe.id();
        // Waiting on a word this PE has an un-quieted loopback put to is a
        // self-satisfying wait: the wait can complete on our own in-flight
        // data instead of the remote event it is meant to observe.
        if let Some(h) = self.pending.borrow().check_get(me, off, 8) {
            self.flag_hazard(h);
        }
        let word = m.heap(me).atomic64(off);
        let mut seen = 0;
        m.wait_on(me, || {
            seen = word.load(Ordering::Acquire);
            pred(seen)
        });
        m.san_sync_edge(me, me, off);
        let stamp = m.heap(me).max_stamp(off, 8);
        let poll = self.machine().config().compute.local_op_ns * 2.0;
        let t_begin = self.pe.now();
        m.lift_clock(me, stamp);
        self.pe.advance(poll);
        self.trace(SpanKind::WaitUntil, t_begin.min(self.pe.now()), None, 8);
        seen
    }

    // ---- completion ------------------------------------------------------

    /// `shmem_quiet`: block until all outstanding remote writes by this PE
    /// are globally visible. Flushes every coalescing buffer first — staged
    /// ops are outstanding writes too. Panics if the flush discovered a
    /// staged op whose target died; use [`Self::try_quiet`] to handle that.
    pub fn quiet(&self) {
        unwrap_infallible(self.try_quiet());
    }

    /// Fallible [`Self::quiet`]: completes everything completable, then
    /// surfaces the first error deferred by a coalesced flush — a staged
    /// put or AMO whose target PE died between staging and the flush.
    /// Staging reported success, so the loss must ride the completion path
    /// (this is how `STAT_FAILED_IMAGE` reaches a CAF `sync` statement for
    /// writes the runtime had already buffered).
    pub fn try_quiet(&self) -> Result<(), ConduitError> {
        self.flush_staged();
        let m = self.machine();
        let t_begin = self.pe.now();
        Stats::bump(&m.stats().quiets);
        let t = self.pending.borrow().max_outstanding();
        self.pending.borrow_mut().clear();
        m.lift_clock(self.pe.id(), t);
        self.pe.advance(self.cost.profile().put_issue_ns * 0.25);
        // The completion target rides in `remote_end` so the critical-path
        // profiler can pair this quiet with the transfer it waited on.
        self.record_op(
            SpanKind::Quiet,
            t_begin,
            None,
            0,
            FlowDetail { remote_end: t, ..FlowDetail::default() },
        );
        self.take_deferred()
    }

    /// Drain the deferred-error queue: first error wins, the rest (all
    /// symptoms of the same failure epoch) are dropped with it.
    fn take_deferred(&self) -> Result<(), ConduitError> {
        let mut d = self.deferred.borrow_mut();
        if d.is_empty() {
            return Ok(());
        }
        let first = d[0];
        d.clear();
        Err(first)
    }

    /// `shmem_fence`: order deliveries per target without waiting. Staged
    /// ops flush first — fencing them while buffered would order nothing.
    pub fn fence(&self) {
        self.flush_staged();
        let m = self.machine();
        Stats::bump(&m.stats().fences);
        self.pending.borrow_mut().fence();
        self.pe.advance(self.cost.profile().put_issue_ns * 0.25);
    }

    /// Outstanding un-quieted puts (diagnostics). Counts coalesced ops
    /// still sitting in staging buffers too: staged is even less complete
    /// than in-flight.
    pub fn outstanding_puts(&self) -> usize {
        let staged = self.coalescer.as_ref().map_or(0, |c| c.borrow().staged_ops());
        self.pending.borrow().outstanding() + staged
    }

    // ---- barriers ---------------------------------------------------------

    /// Full-job barrier (`shmem_barrier_all`): implies quiet. Panics on a
    /// deferred staged-op error; use [`Self::try_barrier_all`] under fault
    /// plans with PE failures.
    pub fn barrier_all(&self) {
        unwrap_infallible(self.try_barrier_all());
    }

    /// Fallible [`Self::barrier_all`]. The barrier itself always happens —
    /// peers must not hang because *this* PE had a dead-target write — and
    /// any deferred error surfaces after it.
    pub fn try_barrier_all(&self) -> Result<(), ConduitError> {
        let quiet = self.try_quiet();
        let t_begin = self.pe.now();
        let cost = self.cost.barrier_ns(self.pe.n());
        self.machine().barrier_all(self.pe.id(), cost);
        self.trace(SpanKind::Barrier, t_begin, None, 0);
        quiet
    }

    /// Barrier over a sorted subset of PEs containing this PE. Implies
    /// quiet. Panics on a deferred staged-op error; use
    /// [`Self::try_barrier_group`] under fault plans with PE failures.
    pub fn barrier_group(&self, group: &[PeId]) {
        unwrap_infallible(self.try_barrier_group(group));
    }

    /// Fallible [`Self::barrier_group`] — the synchronization a re-formed
    /// team runs on (survivors barrier among themselves while deferred
    /// errors about the dead PE surface without being lost).
    pub fn try_barrier_group(&self, group: &[PeId]) -> Result<(), ConduitError> {
        let quiet = self.try_quiet();
        let t_begin = self.pe.now();
        let cost = self.cost.barrier_ns(group.len());
        self.machine().barrier_group(self.pe.id(), group, cost);
        self.trace(SpanKind::Barrier, t_begin, None, 0);
        quiet
    }
}

impl Drop for Ctx<'_> {
    /// `shmem_finalize` semantics: a PE's program ending completes its
    /// pending communication. Without this, an op staged after the last
    /// explicit sync point would silently never reach the wire — and a
    /// peer blocked in `wait_until` on it would hang the job.
    fn drop(&mut self) {
        if std::thread::panicking() {
            return; // the job is already coming down; don't double-panic
        }
        self.flush_staged();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_machine::{generic_smp, run, stampede, Platform};

    fn two_node_cfg() -> pgas_machine::MachineConfig {
        stampede(2, 2).with_heap_bytes(1 << 16)
    }

    fn shmem_ctx(pe: Pe<'_>) -> Ctx<'_> {
        Ctx::new(pe, ConduitProfile::mvapich_shmem(), CtxOptions::default())
    }

    #[test]
    fn put_then_get_roundtrips_data() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                ctx.put(2, 64, b"hello-conduit");
                ctx.quiet();
            }
            ctx.barrier_all();
            let mut buf = [0u8; 13];
            ctx.get(2, 64, &mut buf);
            buf
        });
        for r in out.results {
            assert_eq!(&r, b"hello-conduit");
        }
        assert!(out.stats.puts >= 1);
        assert!(out.stats.gets >= 4);
    }

    #[test]
    fn quiet_advances_clock_to_remote_completion() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                ctx.put(2, 0, &[1u8; 4096]);
                let before = pe.now();
                ctx.quiet();
                let after = pe.now();
                (before, after)
            } else {
                (0, 0)
            }
        });
        let (before, after) = out.results[0];
        assert!(after > before, "quiet must wait for remote completion");
    }

    #[test]
    fn get_after_unquieted_put_is_flagged() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                ctx.put(2, 0, &[7u8; 8]);
                let mut buf = [0u8; 8];
                ctx.get(2, 0, &mut buf); // same region, no quiet: hazard
                ctx.hazard_count()
            } else {
                0
            }
        });
        assert_eq!(out.results[0], 1);
        assert_eq!(out.stats.hazards, 1);
    }

    #[test]
    fn quiet_suppresses_the_hazard() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                ctx.put(2, 0, &[7u8; 8]);
                ctx.quiet();
                let mut buf = [0u8; 8];
                ctx.get(2, 0, &mut buf);
                ctx.hazard_count()
            } else {
                0
            }
        });
        assert_eq!(out.results[0], 0);
        assert_eq!(out.stats.hazards, 0);
    }

    #[test]
    fn strict_mode_panics_on_hazard() {
        let err = pgas_machine::run_with_result(two_node_cfg(), |pe| {
            // Coalescing is pinned off: staged overlapping puts apply FIFO
            // at flush and are legitimately ordered, so the WAW hazard this
            // test relies on only exists on the direct path.
            let ctx = Ctx::new(
                pe,
                ConduitProfile::mvapich_shmem(),
                CtxOptions {
                    strict_ordering: true,
                    coalesce: CoalescePolicy::Off,
                    ..Default::default()
                },
            );
            if pe.id() == 0 {
                ctx.put(2, 0, &[7u8; 8]);
                ctx.put(2, 4, &[9u8; 8]); // overlapping WAW
            }
            ctx.barrier_all();
        })
        .unwrap_err();
        assert!(err.message.contains("ordering hazard"), "got: {}", err.message);
    }

    #[test]
    fn fetch_add_is_atomic_under_contention() {
        let out = run(generic_smp(8).with_heap_bytes(4096), |pe| {
            let ctx = Ctx::new(
                pe,
                ConduitProfile::cray_shmem(Platform::GenericSmp),
                CtxOptions::default(),
            );
            ctx.barrier_all();
            for _ in 0..100 {
                ctx.amo(0, 0, AmoOp::FetchAdd(1));
            }
            ctx.barrier_all();
            ctx.amo(0, 0, AmoOp::Fetch)
        });
        for r in out.results {
            assert_eq!(r, 800);
        }
    }

    #[test]
    fn compare_swap_semantics() {
        let out = run(generic_smp(1).with_heap_bytes(4096), |pe| {
            let ctx = Ctx::new(
                pe,
                ConduitProfile::cray_shmem(Platform::GenericSmp),
                CtxOptions::default(),
            );
            ctx.amo(0, 8, AmoOp::Set(10));
            ctx.quiet();
            let miss = ctx.amo(0, 8, AmoOp::CompareSwap { cond: 99, value: 1 });
            let hit = ctx.amo(0, 8, AmoOp::CompareSwap { cond: 10, value: 42 });
            let cur = ctx.amo(0, 8, AmoOp::Fetch);
            (miss, hit, cur)
        });
        assert_eq!(out.results[0], (10, 10, 42));
    }

    #[test]
    fn swap_and_bitwise_ops() {
        let out = run(generic_smp(1).with_heap_bytes(4096), |pe| {
            let ctx = Ctx::new(
                pe,
                ConduitProfile::cray_shmem(Platform::GenericSmp),
                CtxOptions::default(),
            );
            ctx.amo(0, 0, AmoOp::Set(0b1100));
            let old = ctx.amo(0, 0, AmoOp::FetchAnd(0b1010));
            let after_and = ctx.amo(0, 0, AmoOp::Fetch);
            ctx.amo(0, 0, AmoOp::Or(0b0001));
            let after_or = ctx.amo(0, 0, AmoOp::Fetch);
            ctx.amo(0, 0, AmoOp::Xor(0b1111));
            let after_xor = ctx.amo(0, 0, AmoOp::Fetch);
            let swapped = ctx.amo(0, 0, AmoOp::Swap(77));
            (old, after_and, after_or, after_xor, swapped)
        });
        assert_eq!(out.results[0], (0b1100, 0b1000, 0b1001, 0b0110, 0b0110));
    }

    #[test]
    fn wait_until_synchronizes_and_lifts_clock() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                let v = ctx.wait_until(8, |v| v == 5);
                (v, pe.now())
            } else if pe.id() == 2 {
                pe.advance(50_000.0);
                ctx.amo(0, 8, AmoOp::Set(5));
                ctx.quiet();
                (5, pe.now())
            } else {
                (0, 0)
            }
        });
        let (v, waiter_time) = out.results[0];
        assert_eq!(v, 5);
        assert!(
            waiter_time > 50_000,
            "waiter clock {waiter_time} must exceed writer issue time 50000"
        );
    }

    #[test]
    fn iput_scatters_elements() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                let src: Vec<u8> = (0..40).collect();
                // Write every other 8-byte element into pe2 with stride 2.
                ctx.iput(2, 0, 2, &src, 8, 1, 5);
                ctx.quiet();
            }
            ctx.barrier_all();
            let mut buf = vec![0u8; 80];
            ctx.get(2, 0, &mut buf);
            buf
        });
        let buf = &out.results[1];
        for i in 0..5 {
            let elem: Vec<u8> = (i as u8 * 8..(i as u8 + 1) * 8).collect();
            assert_eq!(&buf[i * 16..i * 16 + 8], &elem[..], "element {i}");
            assert_eq!(&buf[i * 16 + 8..i * 16 + 16], &[0u8; 8], "gap {i}");
        }
    }

    #[test]
    fn iget_gathers_elements() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 2 {
                let src: Vec<u8> = (0..80).collect();
                ctx.put(2, 0, &src);
                ctx.quiet();
            }
            ctx.barrier_all();
            let mut out_buf = vec![0u8; 40];
            // Gather every other 8-byte element from pe2.
            ctx.iget(2, 0, 2, &mut out_buf, 8, 1, 5);
            out_buf
        });
        for r in &out.results {
            for i in 0..5usize {
                let expect: Vec<u8> = (i as u8 * 16..i as u8 * 16 + 8).collect();
                assert_eq!(&r[i * 8..(i + 1) * 8], &expect[..], "element {i}");
            }
        }
    }

    #[test]
    fn native_iput_issues_one_message_loop_issues_many() {
        let cray = run(two_node_cfg(), |pe| {
            let ctx =
                Ctx::new(pe, ConduitProfile::cray_shmem(Platform::CrayXc30), CtxOptions::default());
            if pe.id() == 0 {
                let src = vec![1u8; 800];
                ctx.iput(2, 0, 2, &src, 8, 1, 100);
                ctx.quiet();
            }
            ctx.barrier_all();
        });
        assert_eq!(cray.stats.puts, 1, "native strided: one descriptor");

        let mvapich = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                let src = vec![1u8; 800];
                ctx.iput(2, 0, 2, &src, 8, 1, 100);
                ctx.quiet();
            }
            ctx.barrier_all();
        });
        assert_eq!(mvapich.stats.puts, 100, "loop strided: one put per element");
    }

    #[test]
    fn am_strided_put_moves_data_in_one_message() {
        let out = run(two_node_cfg(), |pe| {
            let ctx =
                Ctx::new(pe, ConduitProfile::gasnet(Platform::Stampede), CtxOptions::default());
            if pe.id() == 0 {
                let src: Vec<u8> = (0..24).collect();
                ctx.am_strided_put(2, 0, 3, &src, 8, 1, 3);
                ctx.quiet();
            }
            ctx.barrier_all();
            let mut buf = vec![0u8; 8];
            ctx.get(2, 48, &mut buf); // element 2 lands at offset 2*3*8 = 48
            buf
        });
        assert_eq!(out.stats.puts, 1);
        assert_eq!(out.results[0], (16..24).collect::<Vec<u8>>());
    }

    #[test]
    fn fastpath_counts_and_still_moves_data() {
        let out = run(generic_smp(2).with_heap_bytes(4096), |pe| {
            let ctx = Ctx::new(
                pe,
                ConduitProfile::mvapich_shmem(),
                CtxOptions { shmem_ptr_fastpath: true, ..Default::default() },
            );
            if pe.id() == 0 {
                ctx.put(1, 0, b"fastpath");
                ctx.quiet();
            }
            ctx.barrier_all();
            let mut buf = [0u8; 8];
            ctx.get(1, 0, &mut buf);
            buf
        });
        assert!(out.stats.local_fastpath >= 2);
        assert_eq!(&out.results[1], b"fastpath");
    }

    #[test]
    fn fence_orders_without_completing() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                ctx.put(2, 0, &[1u8; 8]);
                ctx.fence();
                ctx.put(2, 0, &[2u8; 8]); // same location: fence makes this OK
                let pending = ctx.outstanding_puts();
                let hazards = ctx.hazard_count();
                ctx.quiet();
                (pending, hazards)
            } else {
                (0, 0)
            }
        });
        let (pending, hazards) = out.results[0];
        assert_eq!(pending, 2, "fence does not retire obligations");
        assert_eq!(hazards, 0, "fence suppresses the WAW hazard");
    }

    #[test]
    fn tracing_records_operation_spans() {
        let out = run(two_node_cfg().with_trace(true), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                ctx.put(2, 0, &[1u8; 64]);
                ctx.quiet();
                let mut buf = [0u8; 8];
                ctx.get(2, 0, &mut buf);
                ctx.amo(2, 8, AmoOp::FetchAdd(1));
            }
            ctx.barrier_all();
        });
        use pgas_machine::trace::SpanKind;
        let kinds: Vec<SpanKind> = out.trace.iter().filter(|s| s.pe == 0).map(|s| s.kind).collect();
        assert!(kinds.contains(&SpanKind::Put));
        assert!(kinds.contains(&SpanKind::Get));
        assert!(kinds.contains(&SpanKind::Amo));
        assert!(kinds.contains(&SpanKind::Quiet));
        assert!(kinds.contains(&SpanKind::Barrier));
        for s in &out.trace {
            assert!(s.end >= s.begin, "span must not be inverted: {s:?}");
        }
        // Disabled by default: same program records nothing. (Forced off so
        // a PGAS_TRACE=1 environment cannot turn it back on.)
        let out = pgas_machine::with_forced_tracing(false, || {
            run(two_node_cfg(), |pe| {
                let ctx = shmem_ctx(pe);
                if pe.id() == 0 {
                    ctx.put(2, 0, &[1u8; 64]);
                }
                ctx.barrier_all();
            })
        });
        assert!(out.trace.is_empty());
    }

    #[test]
    fn injected_drops_retry_and_charge_virtual_time() {
        use pgas_machine::FaultPlan;
        let cfg =
            two_node_cfg().with_trace(true).with_faults(FaultPlan::transient_drops(0xBEEF, 0.1));
        let out = run(cfg, |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                for i in 0..64usize {
                    ctx.put(2, 64 + i * 8, &[i as u8; 8]);
                }
                ctx.quiet();
            }
            ctx.barrier_all();
            let mut buf = [0u8; 8];
            ctx.get(2, 64 + 63 * 8, &mut buf);
            buf
        });
        for r in out.results {
            assert_eq!(r, [63u8; 8], "data still lands intact under drops");
        }
        assert!(out.stats.faults_injected > 0, "0.1 drop rate over 64 puts must hit");
        assert!(out.stats.retries > 0);
        assert_eq!(out.stats.retries_exhausted, 0, "8 attempts at 10% loss never exhaust here");
        assert_eq!(out.stats.faults_injected, out.fault_events.len() as u64);
        for e in &out.fault_events {
            assert_eq!(e.kind, "drop");
            assert!(e.delay_ns > 0);
        }
        use pgas_machine::trace::SpanKind;
        assert!(out.trace.iter().any(|s| s.kind == SpanKind::Retry), "retries leave trace spans");
    }

    #[test]
    fn same_seed_same_faults_different_seed_differs() {
        use pgas_machine::FaultPlan;
        let go = |seed: u64| {
            run(two_node_cfg().with_faults(FaultPlan::transient_drops(seed, 0.2)), |pe| {
                let ctx = shmem_ctx(pe);
                if pe.id() == 0 {
                    for i in 0..96usize {
                        ctx.put(2, i * 8, &[1u8; 8]);
                    }
                    ctx.quiet();
                }
                ctx.barrier_all();
            })
        };
        let a = go(11);
        let b = go(11);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.fault_events, b.fault_events);
        assert_eq!(a.clocks, b.clocks);
        let c = go(12);
        assert_ne!(
            a.fault_events, c.fault_events,
            "a different seed must perturb the fault schedule"
        );
    }

    #[test]
    fn retry_exhaustion_surfaces_an_error() {
        use pgas_machine::{FaultPlan, RetryPolicy};
        let plan = FaultPlan::transient_drops(7, 0.9)
            .with_retry(RetryPolicy { max_attempts: 2, ..Default::default() });
        let out = run(two_node_cfg().with_faults(plan), |pe| {
            let ctx = shmem_ctx(pe);
            if pe.id() == 0 {
                (0..50).find_map(|_| ctx.try_put(2, 0, &[1u8; 8]).err())
            } else {
                None
            }
        });
        let err = out.results[0].expect("90% drops with 2 attempts must exhaust");
        assert_eq!(err, ConduitError::RetriesExhausted { op: "put", target: 2, attempts: 2 });
        assert!(out.stats.retries_exhausted >= 1);
        assert!(out.fault_events.iter().any(|e| e.kind == "exhausted"));
    }

    #[test]
    fn operations_on_a_dead_target_fail_fast() {
        use pgas_machine::FaultPlan;
        let plan = FaultPlan::new(1).with_pe_failure(2, 1_000);
        let out = run(two_node_cfg().with_faults(plan), |pe| {
            let ctx = shmem_ctx(pe);
            let m = pe.machine();
            if pe.id() == 2 {
                pe.advance(2_000.0); // crosses the scheduled deadline
                None
            } else if pe.id() == 0 {
                m.wait_on(0, || m.pe_failed(2));
                let put = ctx.try_put(2, 0, &[1u8; 8]);
                let mut buf = [0u8; 8];
                let get = ctx.try_get(2, 0, &mut buf);
                let amo = ctx.try_amo(2, 0, AmoOp::FetchAdd(1)).err();
                Some((put, get, amo))
            } else {
                None
            }
        });
        let (put, get, amo) = out.results[0].unwrap();
        assert_eq!(put, Err(ConduitError::TargetFailed { op: "put", target: 2 }));
        assert_eq!(get, Err(ConduitError::TargetFailed { op: "get", target: 2 }));
        assert_eq!(amo, Some(ConduitError::TargetFailed { op: "amo", target: 2 }));
        assert_eq!(out.failed_pes, vec![2]);
        assert_eq!(out.stats.pe_failures, 1);
    }

    #[test]
    fn coalesced_staged_ops_to_a_dying_target_surface_at_quiet() {
        use pgas_machine::FaultPlan;
        let plan = FaultPlan::new(3).with_pe_failure(2, 1_000);
        let out = run(two_node_cfg().with_faults(plan), |pe| {
            let ctx = coalescing_ctx(pe);
            if pe.id() == 2 {
                pe.advance(2_000.0); // crosses the scheduled deadline
                (Ok(()), 0, 0)
            } else if pe.id() == 0 {
                // Staging succeeds while the target is still alive...
                ctx.put(2, 0, &[1u8; 8]);
                ctx.put(2, 64, &[2u8; 8]);
                let staged = ctx.outstanding_puts();
                assert_eq!(staged, 2, "both puts staged without error");
                // ...but the deadline passes before the flush, so the batch
                // never reaches the wire and the loss surfaces at quiet.
                pe.advance(2_000.0);
                (ctx.try_quiet(), staged, ctx.deferred_errors())
            } else {
                (Ok(()), 0, 0)
            }
        });
        let (quiet, _, left) = out.results[0];
        assert_eq!(quiet, Err(ConduitError::TargetFailed { op: "put", target: 2 }));
        assert_eq!(left, 0, "try_quiet drains every deferred error");
        assert_eq!(out.stats.pe_failures, 1);
    }

    #[test]
    fn injected_corruption_is_detected_and_retried_end_to_end() {
        use pgas_machine::FaultPlan;
        // Generous retry budget: every corrupted delivery is caught by the
        // end-to-end CRC and resent until a clean copy lands.
        let plan = FaultPlan::new(9).with_corrupt_prob(0.3);
        let out = pgas_machine::with_forced_checksums(true, || {
            run(two_node_cfg().with_faults(plan), |pe| {
                let ctx = shmem_ctx(pe);
                if pe.id() == 0 {
                    for i in 0..64usize {
                        ctx.put(2, i * 8, &(i as u64).to_le_bytes());
                    }
                    ctx.quiet();
                }
                ctx.barrier_all();
                let mut buf = [0u8; 8];
                ctx.get(2, 63 * 8, &mut buf);
                u64::from_le_bytes(buf)
            })
        });
        for r in &out.results {
            assert_eq!(*r, 63, "corrupted deliveries retried to a clean copy");
        }
        assert!(out.stats.payload_corrupt > 0, "the CRC caught corruption: {:?}", out.stats);
        assert_eq!(out.stats.retries_exhausted, 0);
    }

    #[test]
    fn corruption_with_an_exhausted_budget_is_the_typed_error() {
        use pgas_machine::{FaultPlan, RetryPolicy};
        let plan = FaultPlan::new(9)
            .with_corrupt_prob(0.9)
            .with_retry(RetryPolicy { max_attempts: 1, ..Default::default() });
        let out = pgas_machine::with_forced_checksums(true, || {
            run(two_node_cfg().with_faults(plan), |pe| {
                let ctx = shmem_ctx(pe);
                if pe.id() == 0 {
                    (0..50).find_map(|_| ctx.try_put(2, 0, &[1u8; 8]).err())
                } else {
                    None
                }
            })
        });
        let err = out.results[0].expect("90% corruption with 1 attempt must exhaust");
        assert_eq!(err, ConduitError::PayloadCorrupt { op: "put", target: 2, attempts: 1 });
    }

    #[test]
    fn am_call_to_a_dying_target_times_out_instead_of_blocking() {
        use pgas_machine::{FaultPlan, RetryPolicy};
        let plan = FaultPlan::new(5)
            .with_pe_failure(2, 1_000)
            .with_retry(RetryPolicy { max_attempts: 3, ..Default::default() });
        let out = run(two_node_cfg().with_faults(plan), |pe| {
            let ctx = shmem_ctx(pe);
            let add = ctx.register_am(Rc::new(AddAm));
            ctx.barrier_all();
            if pe.id() == 2 {
                pe.advance(2_000.0); // crosses the scheduled deadline
                None
            } else if pe.id() == 0 {
                // Issue just before the target's deadline: the request is
                // accepted, but the handler's virtual execution instant
                // falls after the death, so no reply can ever come. The
                // sender must pay the reply-timeout retry chain and then
                // surface the loss — not block forever.
                pe.advance(990.0);
                let t0 = pe.now();
                let err = ctx.try_am_call(2, add, &5u64.to_le_bytes()).err();
                Some((err, pe.now() - t0))
            } else {
                None
            }
        });
        let (err, waited) = out.results[0].unwrap();
        assert_eq!(err, Some(ConduitError::TargetFailed { op: "am", target: 2 }));
        assert!(waited > 0, "the sender paid the reply-timeout retry chain");
        assert!(
            out.fault_events.iter().any(|e| e.kind == "reply-timeout"),
            "timeouts are recorded fault events: {:?}",
            out.fault_events
        );
    }

    #[test]
    fn barrier_group_subsets_synchronize() {
        let out = run(generic_smp(4).with_heap_bytes(4096), |pe| {
            let ctx = Ctx::new(pe, ConduitProfile::mvapich_shmem(), CtxOptions::default());
            if pe.id() < 2 {
                pe.advance(1000.0 * (pe.id() + 1) as f64);
                ctx.barrier_group(&[0, 1]);
                pe.now()
            } else {
                0
            }
        });
        assert_eq!(out.results[0], out.results[1]);
        assert!(out.results[0] >= 2000);
    }

    // ---- coalescing & active messages ------------------------------------

    fn coalescing_ctx(pe: Pe<'_>) -> Ctx<'_> {
        Ctx::new(
            pe,
            ConduitProfile::mvapich_shmem(),
            CtxOptions {
                coalesce: CoalescePolicy::On(CoalescingConfig::default()),
                ..Default::default()
            },
        )
    }

    #[test]
    fn coalescing_merges_rewrites_into_one_wire_message() {
        let out = run(two_node_cfg().with_trace(true), |pe| {
            let ctx = coalescing_ctx(pe);
            assert!(ctx.coalescing());
            if pe.id() == 0 {
                // Four rewrites of one location: exact-range write combining
                // keeps one staged op carrying the last payload.
                for round in 1..=4u8 {
                    ctx.put_nbi(2, 0, &[round; 64]);
                }
                let staged = ctx.outstanding_puts();
                ctx.quiet();
                staged
            } else {
                0
            }
        });
        assert_eq!(out.results[0], 1, "rewrites merge into one staged op");
        assert_eq!(out.stats.puts, 4, "every put still counts");
        let wire_puts = out.trace.iter().filter(|s| s.pe == 0 && s.kind == SpanKind::Put).count();
        assert_eq!(wire_puts, 1, "one flush span for the merged batch");
        // The last write wins on the target.
        let data = run(two_node_cfg(), |pe| {
            let ctx = coalescing_ctx(pe);
            if pe.id() == 0 {
                for round in 1..=4u8 {
                    ctx.put_nbi(2, 0, &[round; 64]);
                }
                ctx.quiet();
            }
            ctx.barrier_all();
            let mut buf = [0u8; 64];
            ctx.get(2, 0, &mut buf);
            buf
        });
        for r in data.results {
            assert_eq!(r, [4u8; 64], "last staged payload lands");
        }
    }

    #[test]
    fn quiet_flushes_staged_ops() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = coalescing_ctx(pe);
            if pe.id() == 0 {
                ctx.put(2, 0, &[1u8; 8]);
                ctx.put(2, 16, &[2u8; 8]);
                let before = ctx.outstanding_puts();
                ctx.quiet();
                let after = ctx.outstanding_puts();
                (before, after)
            } else {
                (9, 9)
            }
        });
        assert_eq!(out.results[0], (2, 0), "staged ops count as outstanding until quiet");
    }

    #[test]
    fn staged_put_then_get_still_flags_missing_quiet() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = coalescing_ctx(pe);
            if pe.id() == 0 {
                ctx.put(2, 0, &[7u8; 8]);
                let mut buf = [0u8; 8];
                // The get flushes the buffer first (read-your-writes), and
                // the freshly flushed put is in flight: hazard, exactly as
                // without coalescing.
                ctx.get(2, 0, &mut buf);
                (ctx.hazard_count(), buf)
            } else {
                (0, [0u8; 8])
            }
        });
        let (hazards, buf) = out.results[0];
        assert_eq!(hazards, 1, "skipping quiet is still flagged under coalescing");
        assert_eq!(buf, [7u8; 8], "the flush landed the data before the read");
        assert_eq!(out.stats.hazards, 1);
    }

    #[test]
    fn forced_aggregation_off_beats_explicit_on() {
        // The suite-wide kill switch must win over per-context `On`: with
        // it, overlapping puts take the direct path and the WAW hazard
        // reappears.
        let out = pgas_machine::with_forced_aggregation(false, || {
            run(two_node_cfg(), |pe| {
                let ctx = coalescing_ctx(pe);
                assert!(!ctx.coalescing());
                if pe.id() == 0 {
                    ctx.put(2, 0, &[1u8; 8]);
                    ctx.put(2, 0, &[2u8; 8]);
                    (ctx.outstanding_puts(), ctx.hazard_count())
                } else {
                    (0, 0)
                }
            })
        });
        assert_eq!(out.results[0], (2, 1), "direct path: two obligations, one WAW hazard");
    }

    #[test]
    fn staged_amos_flush_before_a_fetching_amo() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = coalescing_ctx(pe);
            if pe.id() == 0 {
                for _ in 0..3 {
                    ctx.amo(2, 8, AmoOp::Add(5));
                }
                let staged = ctx.outstanding_puts();
                // Fetching AMO flushes the node buffer first, so it observes
                // all three adds.
                let v = ctx.amo(2, 8, AmoOp::FetchAdd(0));
                (staged, v)
            } else {
                (0, 0)
            }
        });
        assert_eq!(out.results[0], (3, 15));
        assert_eq!(out.stats.amos, 4);
    }

    #[test]
    fn capacity_overflow_flushes_mid_stream() {
        let out = run(two_node_cfg().with_trace(true), |pe| {
            let cfg = CoalescingConfig { max_bytes: 64, max_ops: 4, max_age_ns: u64::MAX };
            let ctx = Ctx::new(
                pe,
                ConduitProfile::mvapich_shmem(),
                CtxOptions { coalesce: CoalescePolicy::On(cfg), ..Default::default() },
            );
            if pe.id() == 0 {
                for i in 0..6usize {
                    ctx.put(2, i * 16, &[i as u8; 16]);
                }
                ctx.quiet();
            }
            ctx.barrier_all();
            let mut buf = [0u8; 96];
            ctx.get(2, 0, &mut buf);
            buf
        });
        // 16-byte puts, 64-byte buffer: flushes after every 4 ops → 2 wire
        // messages for 6 puts (one forced, one at quiet).
        let wire_puts = out.trace.iter().filter(|s| s.pe == 0 && s.kind == SpanKind::Put).count();
        assert_eq!(wire_puts, 2, "capacity forces a mid-stream flush");
        for r in out.results {
            for i in 0..6usize {
                assert_eq!(&r[i * 16..(i + 1) * 16], &[i as u8; 16], "payload {i}");
            }
        }
    }

    struct AddAm;
    impl AmHandler for AddAm {
        fn compute_ns(&self, _arg: &[u8]) -> f64 {
            25.0
        }
        fn execute(&self, t: &mut AmTarget<'_>, arg: &[u8]) -> Option<Vec<u8>> {
            let delta = u64::from_le_bytes(arg.try_into().unwrap());
            let v = t.read_u64(0);
            t.write_u64(0, v.wrapping_add(delta));
            Some(v.to_le_bytes().to_vec())
        }
    }

    #[test]
    fn am_send_runs_handler_at_target() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            let add = ctx.register_am(Rc::new(AddAm));
            ctx.barrier_all();
            if pe.id() == 0 {
                for _ in 0..3 {
                    ctx.am_send(2, add, &5u64.to_le_bytes());
                }
                let outstanding = ctx.outstanding_puts();
                ctx.quiet();
                outstanding
            } else {
                0
            }
        });
        assert_eq!(out.results[0], 3, "each handler write is a completion obligation");
        assert_eq!(out.stats.ams, 3);
        let check = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            let add = ctx.register_am(Rc::new(AddAm));
            ctx.barrier_all();
            if pe.id() == 0 {
                ctx.am_send(2, add, &5u64.to_le_bytes());
                ctx.am_send(2, add, &7u64.to_le_bytes());
                ctx.quiet();
            }
            ctx.barrier_all();
            ctx.amo(2, 0, AmoOp::Fetch)
        });
        for r in check.results {
            assert_eq!(r, 12, "both handler updates applied atomically");
        }
    }

    #[test]
    fn am_call_round_trips_a_reply() {
        let out = run(two_node_cfg(), |pe| {
            let ctx = shmem_ctx(pe);
            let add = ctx.register_am(Rc::new(AddAm));
            ctx.barrier_all();
            if pe.id() == 0 {
                ctx.amo(2, 0, AmoOp::Set(40));
                ctx.quiet();
                let before = pe.now();
                let reply = ctx.am_call(2, add, &2u64.to_le_bytes());
                let after = pe.now();
                let old = u64::from_le_bytes(reply.try_into().unwrap());
                let now = ctx.amo(2, 0, AmoOp::Fetch);
                (old, now, after > before)
            } else {
                (0, 0, true)
            }
        });
        let (old, now, advanced) = out.results[0];
        assert_eq!(old, 40, "reply carries the pre-update value");
        assert_eq!(now, 42, "the handler's write landed");
        assert!(advanced, "the round trip costs virtual time");
    }

    #[test]
    fn am_faults_surface_like_put_faults() {
        use pgas_machine::{FaultPlan, RetryPolicy};
        let plan = FaultPlan::transient_drops(3, 0.9)
            .with_retry(RetryPolicy { max_attempts: 2, ..Default::default() });
        let out = run(two_node_cfg().with_faults(plan), |pe| {
            let ctx = shmem_ctx(pe);
            let add = ctx.register_am(Rc::new(AddAm));
            if pe.id() == 0 {
                (0..50).find_map(|_| ctx.try_am_send(2, add, &1u64.to_le_bytes()).err())
            } else {
                None
            }
        });
        let err = out.results[0].expect("90% drops with 2 attempts must exhaust");
        assert_eq!(err, ConduitError::RetriesExhausted { op: "am", target: 2, attempts: 2 });
    }
}
