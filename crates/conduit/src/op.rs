//! The unified conduit operation descriptor.
//!
//! Every one-sided operation a context can perform is described by an
//! [`OpDesc`] and executed by `Ctx::submit` — the single fallible,
//! detail-carrying choke point where the sanitizer, metrics, flow
//! tracing, fault-retry, coalescing, and active-message paths all hook.
//! The ~20 named public methods (`put`, `try_put`, `put_nbi`, `iput`,
//! `amo`, `am_strided_put`, ...) are thin shims that build a descriptor
//! and interpret the receipt; new cross-cutting behaviour lands in
//! `submit`'s dispatch once instead of per method.

use crate::am::AmHandlerId;
use crate::ctx::AmoOp;
use pgas_machine::machine::PeId;

/// When an operation's entry point returns relative to its effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Completion {
    /// Return after local completion (source buffer reusable; for fetching
    /// ops, the result is in hand). Remote completion still waits for
    /// `quiet`.
    #[default]
    Blocking,
    /// Return after issue only (`shmem_*_nbi`): even local completion is
    /// deferred to `quiet`.
    Nbi,
}

/// What the operation does. Borrows the caller's buffers — a descriptor
/// describes exactly one submission.
pub enum OpKind<'a> {
    /// Contiguous write of `src` into the peer's heap at `dst_off`.
    Put { dst_off: usize, src: &'a [u8] },
    /// Contiguous read of the peer's heap at `src_off` into `out`.
    Get { src_off: usize, out: &'a mut [u8] },
    /// Remote atomic on the 8-byte word at `off` of the peer's heap. The
    /// receipt's `value` is the word's previous value.
    Amo { off: usize, op: AmoOp },
    /// 1-D strided write (`shmem_iput`): element `i` of `src` (elements of
    /// `elem` bytes, read at `src_stride` *elements*) lands at
    /// `dst_off + i * dst_stride * elem`.
    StridedPut {
        dst_off: usize,
        dst_stride: usize,
        src: &'a [u8],
        elem: usize,
        src_stride: usize,
        nelems: usize,
    },
    /// 1-D strided read (`shmem_iget`), the mirror of `StridedPut`.
    StridedGet {
        src_off: usize,
        src_stride: usize,
        out: &'a mut [u8],
        elem: usize,
        out_stride: usize,
        nelems: usize,
    },
    /// AM-packed strided write: one contiguous message, unpacked by a
    /// software handler at the target (GASNet VIS).
    AmStridedPut {
        dst_off: usize,
        dst_stride: usize,
        src: &'a [u8],
        elem: usize,
        src_stride: usize,
        nelems: usize,
    },
    /// AM-packed scatter-put of arbitrary `(offset, len)` regions;
    /// `payload` covers them front to back.
    AmPutRegions { regions: &'a [(usize, usize)], payload: &'a [u8] },
    /// AM-packed gather-get of arbitrary regions into `out`.
    AmGetRegions { regions: &'a [(usize, usize)], out: &'a mut [u8] },
    /// One-way active message: the registered handler runs at the peer
    /// with `arg`; any reply is discarded. Completes remotely at `quiet`.
    AmSend { handler: AmHandlerId, arg: &'a [u8] },
    /// Round-trip active message: like `AmSend`, but blocks for the
    /// handler's reply, delivered into `reply`.
    AmCall { handler: AmHandlerId, arg: &'a [u8], reply: &'a mut Vec<u8> },
}

impl OpKind<'_> {
    /// Label used for fault events and error reporting.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Put { .. } => "put",
            OpKind::Get { .. } => "get",
            OpKind::Amo { .. } => "amo",
            OpKind::StridedPut { .. } => "iput",
            OpKind::StridedGet { .. } => "iget",
            OpKind::AmStridedPut { .. } | OpKind::AmPutRegions { .. } => "am put",
            OpKind::AmGetRegions { .. } => "am get",
            OpKind::AmSend { .. } | OpKind::AmCall { .. } => "am",
        }
    }

    /// The contiguous outbound payload this op carries, if any — the bytes
    /// an end-to-end checksum covers. Gets carry no outbound payload;
    /// strided puts cover their (packed) source slice.
    pub fn payload(&self) -> Option<&[u8]> {
        match self {
            OpKind::Put { src, .. }
            | OpKind::StridedPut { src, .. }
            | OpKind::AmStridedPut { src, .. } => Some(src),
            OpKind::AmPutRegions { payload, .. } => Some(payload),
            OpKind::AmSend { arg, .. } | OpKind::AmCall { arg, .. } => Some(arg),
            OpKind::Get { .. } | OpKind::StridedGet { .. } | OpKind::AmGetRegions { .. } => None,
            OpKind::Amo { .. } => None,
        }
    }
}

/// One operation: what, to whom, and with which completion semantics.
pub struct OpDesc<'a> {
    pub peer: PeId,
    pub completion: Completion,
    pub kind: OpKind<'a>,
    /// Team the operation is attributed to (0 = world / no team). Defaults
    /// to the issuing context's team scope; an explicit value here wins.
    /// Carried so the sanitizer, metrics, and flow tracing can break ops
    /// down per team without threading a team handle through every shim.
    pub team: u32,
    /// End-to-end CRC32 over the payload, verified when the bytes are
    /// applied at the target. `None` means "compute at submit when the
    /// machine runs with checksums enabled"; ops without a payload keep
    /// `None` throughout.
    pub checksum: Option<u32>,
}

impl<'a> OpDesc<'a> {
    /// Blocking-completion descriptor (the common case).
    pub fn new(peer: PeId, kind: OpKind<'a>) -> Self {
        OpDesc { peer, completion: Completion::Blocking, kind, team: 0, checksum: None }
    }

    /// Issue-only completion (`shmem_*_nbi`).
    pub fn nbi(mut self) -> Self {
        self.completion = Completion::Nbi;
        self
    }

    /// Attribute this operation to `team` (overriding the context's scope).
    pub fn on_team(mut self, team: u32) -> Self {
        self.team = team;
        self
    }

    /// Carry a precomputed payload CRC32 instead of computing at submit.
    pub fn with_checksum(mut self, crc: u32) -> Self {
        self.checksum = Some(crc);
        self
    }
}

/// What `Ctx::submit` reports back on success.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpReceipt {
    /// For fetching AMOs, the word's previous value; 0 otherwise.
    pub value: u64,
    /// Payload bytes the operation moved (or staged).
    pub bytes: usize,
    /// The op was coalesced into a staging buffer and has not touched the
    /// wire yet; it flushes at the next `quiet`/`fence`/barrier, when a
    /// non-stageable op targets the same node, or when its buffer fills
    /// or ages out.
    pub staged: bool,
}
