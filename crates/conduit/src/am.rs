//! Active messages: registered handlers executed at the target PE.
//!
//! A Lamellar-style alternative to the get–compute–put round trip: the
//! initiator ships one request message (argument payload plus a small
//! header) and the registered handler runs *at the target*, reading and
//! writing the target's heap directly. Cost model: one wire transfer plus
//! handler dispatch and target-side compute (`CostModel::am_request`) —
//! no reply leg unless the caller uses `am_call`, which adds one
//! (`CostModel::am_reply`).
//!
//! Handlers are registered SPMD-symmetrically: every PE registers the same
//! handlers in the same order (exactly like symmetric heap allocation), so
//! an [`AmHandlerId`] minted on one PE names the same logic on every PE,
//! and the simulator can run the handler on the *initiator's* thread while
//! the machine's `apply_and_notify` critical section makes its effects
//! atomic at the target — the same execution discipline remote atomics
//! use.
//!
//! Handlers observe the target heap only through [`AmTarget`], which
//! records every range touched so `Ctx` can stamp, sanitize, and register
//! completion obligations for exactly what the handler did.

use pgas_machine::machine::{Machine, PeId};
use std::sync::atomic::Ordering;

/// Index of a registered handler (stable across PEs by symmetric
/// registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmHandlerId(pub(crate) usize);

/// User-defined logic executed at the target PE of an active message.
pub trait AmHandler {
    /// Target-side compute charged to the virtual clock *beyond* the
    /// profile's dispatch cost, ns. Defaults to free (pure data movement).
    fn compute_ns(&self, _arg: &[u8]) -> f64 {
        0.0
    }

    /// Run at the target. Return `Some(reply)` to answer an
    /// `am_call`; `am_send` discards any reply.
    fn execute(&self, target: &mut AmTarget<'_>, arg: &[u8]) -> Option<Vec<u8>>;
}

/// The target-side view a handler gets: direct heap access on the target
/// PE, with every touched range recorded.
pub struct AmTarget<'m> {
    m: &'m Machine,
    pe: PeId,
    pub(crate) writes: Vec<(usize, usize)>,
    pub(crate) reads: Vec<(usize, usize)>,
}

impl<'m> AmTarget<'m> {
    pub(crate) fn new(m: &'m Machine, pe: PeId) -> Self {
        AmTarget { m, pe, writes: Vec::new(), reads: Vec::new() }
    }

    /// The PE this handler is executing on.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Read the 8-byte word at `off` of the target heap.
    pub fn read_u64(&mut self, off: usize) -> u64 {
        self.reads.push((off, 8));
        self.m.heap(self.pe).atomic64(off).load(Ordering::Acquire)
    }

    /// Write the 8-byte word at `off` of the target heap. Atomic, so
    /// `wait_until` watchers of the word observe it safely.
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.writes.push((off, 8));
        self.m.heap(self.pe).atomic64(off).store(v, Ordering::Release);
    }

    /// Read `out.len()` bytes at `off` of the target heap.
    pub fn read_bytes(&mut self, off: usize, out: &mut [u8]) {
        self.reads.push((off, out.len()));
        self.m.heap(self.pe).read_bytes(off, out);
    }

    /// Write `data` at `off` of the target heap.
    pub fn write_bytes(&mut self, off: usize, data: &[u8]) {
        self.writes.push((off, data.len()));
        self.m.heap(self.pe).write_bytes(off, data);
    }
}
