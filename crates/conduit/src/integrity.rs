//! End-to-end payload checksums: CRC32 (IEEE 802.3) over the bytes an
//! operation carries, computed when a descriptor is submitted and verified
//! when its payload is applied at the target heap.
//!
//! The polynomial and table layout are the standard reflected CRC-32
//! (`0xEDB88320`), so values match every other IEEE CRC32 implementation —
//! useful when a test wants to cross-check a digest by hand. The table is
//! built once at first use; hashing is one table lookup per byte.
//!
//! Checksums deliberately charge **no virtual time**: a verified transfer
//! costs exactly what an unverified one does, so enabling `PGAS_CHECKSUM`
//! changes no run digest. What verification buys is *typed detection*: an
//! injected `FaultKind::Corrupt` that would otherwise surface as a generic
//! link-level reject is caught by the CRC mismatch and reported as
//! `ConduitError::PayloadCorrupt` when the retry budget runs out.

/// The reflected CRC-32 (IEEE) lookup table, built on first use.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC32 (IEEE) of `data` in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC32 hasher for payloads assembled from multiple slices
/// (region scatter-puts, coalesced flush buffers).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32/IEEE check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_the_digest() {
        let mut data = vec![0xA5u8; 512];
        let clean = crc32(&data);
        for i in [0usize, 255, 511] {
            data[i] ^= 0x01;
            assert_ne!(crc32(&data), clean, "flip at byte {i} must be detected");
            data[i] ^= 0x01;
        }
        assert_eq!(crc32(&data), clean);
    }
}
