//! Invariants that must hold for EVERY (profile, platform) combination the
//! harnesses can run: the benchmark figures compare these configurations, so
//! each one must be individually sane.

use pgas_conduit::{ConduitProfile, Ctx, CtxOptions};
use pgas_machine::{run, Platform};

fn all_configs() -> Vec<(Platform, ConduitProfile)> {
    let mut v = Vec::new();
    for p in [Platform::Stampede, Platform::Titan, Platform::CrayXc30] {
        v.push((p, ConduitProfile::native_shmem(p)));
        v.push((p, ConduitProfile::gasnet(p)));
        v.push((p, ConduitProfile::mpi3(p)));
    }
    v.push((Platform::Titan, ConduitProfile::dmapp(Platform::Titan)));
    v.push((Platform::CrayXc30, ConduitProfile::dmapp(Platform::CrayXc30)));
    v
}

#[test]
fn data_and_ordering_hold_on_every_profile() {
    for (platform, profile) in all_configs() {
        let out = run(platform.config(2, 1).with_heap_bytes(1 << 16), move |pe| {
            let ctx = Ctx::new(pe, profile, CtxOptions::default());
            let peer = 1 - pe.id();
            // Put, quiet, verify via get.
            ctx.put(peer, 0, &[pe.id() as u8 + 1; 32]);
            ctx.quiet();
            ctx.barrier_all();
            let mut buf = [0u8; 32];
            ctx.get(pe.id(), 0, &mut buf);
            assert_eq!(buf, [(peer as u8) + 1; 32], "{platform:?}/{}", profile.label());
            // AMO round trip.
            let old = ctx.amo(peer, 64, pgas_conduit::ctx::AmoOp::FetchAdd(5));
            assert_eq!(old % 5, 0);
            ctx.barrier_all();
            pe.now()
        });
        assert_eq!(out.stats.hazards, 0, "{platform:?}/{}", profile.label());
        assert!(out.makespan_ns() > 0);
    }
}

#[test]
fn virtual_time_ordering_invariants_per_profile() {
    // For every profile: put < get (RTT), small put < large put,
    // intra-node < inter-node. These are *direct-path* wire physics, so
    // pin coalescing off: staged, every small op pays the same
    // issue+flush pattern and the intra/inter contrast this test encodes
    // is deliberately flattened.
    for (platform, profile) in all_configs() {
        let out = run(platform.config(2, 2).with_heap_bytes(1 << 18), move |pe| {
            if pe.id() != 0 {
                return (0, 0, 0, 0, 0);
            }
            let ctx = Ctx::new(
                pe,
                profile,
                CtxOptions { coalesce: pgas_conduit::CoalescePolicy::Off, ..CtxOptions::default() },
            );
            let time_of = |f: &dyn Fn(&Ctx<'_>)| {
                let t0 = ctx.pe().now();
                f(&ctx);
                ctx.quiet();
                ctx.pe().now() - t0
            };
            let small_put = time_of(&|c| c.put(2, 0, &[1u8; 8]));
            let large_put = time_of(&|c| c.put(2, 0, &[1u8; 1 << 16]));
            let get = time_of(&|c| {
                let mut b = [0u8; 8];
                c.get(2, 0, &mut b);
            });
            let local_put = time_of(&|c| c.put(1, 0, &[1u8; 8]));
            let amo = time_of(&|c| {
                c.amo(2, 64, pgas_conduit::ctx::AmoOp::FetchAdd(1));
            });
            (small_put, large_put, get, local_put, amo)
        });
        let (small_put, large_put, get, local_put, amo) = out.results[0];
        let tag = format!("{platform:?}/{}", profile.label());
        assert!(large_put > 2 * small_put, "{tag}: large {large_put} vs small {small_put}");
        assert!(get > small_put, "{tag}: blocking get {get} vs quieted put {small_put}");
        assert!(local_put * 2 < small_put, "{tag}: intra {local_put} vs inter {small_put}");
        assert!(amo > 0, "{tag}");
    }
}

#[test]
fn strided_message_counts_per_profile() {
    for (platform, profile) in all_configs() {
        let native = profile.has_native_strided();
        let out = run(platform.config(2, 1).with_heap_bytes(1 << 16), move |pe| {
            let ctx = Ctx::new(pe, profile, CtxOptions::default());
            if pe.id() == 0 {
                let src = vec![1u8; 400];
                ctx.iput(1, 0, 2, &src, 8, 1, 50);
                ctx.quiet();
            }
            ctx.barrier_all();
        });
        let expected = if native { 1 } else { 50 };
        assert_eq!(out.stats.puts, expected, "{platform:?}/{}: native={native}", profile.label());
    }
}

#[test]
fn single_actor_timing_is_deterministic_everywhere() {
    for (platform, profile) in all_configs() {
        let run_once = || {
            run(platform.config(2, 1).with_heap_bytes(1 << 16), move |pe| {
                let ctx = Ctx::new(pe, profile, CtxOptions::default());
                if pe.id() == 0 {
                    for k in 0..10usize {
                        ctx.put(1, 0, &vec![7u8; 1 << k]);
                    }
                    ctx.quiet();
                    let mut b = [0u8; 64];
                    ctx.get(1, 0, &mut b);
                    ctx.amo(1, 64, pgas_conduit::ctx::AmoOp::Swap(9));
                }
                ctx.barrier_all();
                pe.now()
            })
            .clocks
        };
        assert_eq!(run_once(), run_once(), "{platform:?}/{}", profile.label());
    }
}
