//! Property-style invariants of the machine substrate: clock monotonicity,
//! barrier agreement under arbitrary arrival clocks, NIC conservation.

use pgas_machine::{generic_smp, run, stampede};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn clocks_are_monotone_under_random_local_ops(seed in any::<u64>()) {
        let out = run(generic_smp(4).with_heap_bytes(1 << 14), move |pe| {
            let mut rng = SmallRng::seed_from_u64(seed ^ pe.id() as u64);
            let mut last = pe.now();
            for _ in 0..200 {
                match rng.gen_range(0..4) {
                    0 => { pe.advance(rng.gen_range(0.0..100.0)); }
                    1 => { pe.compute_flops(rng.gen_range(0.0..5000.0)); }
                    2 => { pe.compute_ops(rng.gen_range(0..50)); }
                    _ => { pe.machine().lift_clock(pe.id(), rng.gen_range(0..200)); }
                }
                let now = pe.now();
                assert!(now >= last, "clock went backwards: {now} < {last}");
                last = now;
            }
            last
        });
        prop_assert!(out.results.iter().all(|&t| t > 0));
    }

    #[test]
    fn barrier_agrees_on_max_for_random_arrivals(clocks in prop::collection::vec(0u64..1_000_000, 2..8)) {
        let n = clocks.len();
        let clocks2 = clocks.clone();
        let out = run(generic_smp(n).with_heap_bytes(1 << 14), move |pe| {
            pe.machine().lift_clock(pe.id(), clocks2[pe.id()]);
            pe.machine().barrier_all(pe.id(), 5.0)
        });
        let expect = clocks.iter().max().unwrap() + 5;
        prop_assert!(out.results.iter().all(|&t| t == expect), "{:?} vs {expect}", out.results);
    }
}

#[test]
fn nic_byte_accounting_is_conserved() {
    // Two nodes, one put of known size: the source TX and destination RX
    // must both have seen exactly the payload once.
    let bytes = 4096;
    let out = run(stampede(2, 1).with_heap_bytes(1 << 14), move |pe| {
        if pe.id() == 0 {
            let m = pe.machine();
            m.nic(0).reserve_tx(0, 100, bytes);
            m.nic(1).reserve_rx(900, 100, bytes);
        }
    });
    assert_eq!(out.nics[0].bytes, bytes as u64);
    assert_eq!(out.nics[1].bytes, bytes as u64);
    assert_eq!(out.nics[0].messages + out.nics[1].messages, 2);
}

#[test]
fn concurrent_distinct_group_barriers_do_not_interfere() {
    let out = run(generic_smp(6).with_heap_bytes(1 << 14), |pe| {
        let m = pe.machine();
        let id = pe.id();
        // Two independent groups barrier in parallel, several rounds.
        let group: Vec<usize> = if id < 3 { vec![0, 1, 2] } else { vec![3, 4, 5] };
        for round in 1..=10u64 {
            m.lift_clock(id, round * 100 + id as u64);
            m.barrier_group(id, &group, 1.0);
        }
        pe.now()
    });
    // Within each group, final clocks agree; across groups they may differ.
    assert_eq!(out.results[0], out.results[1]);
    assert_eq!(out.results[1], out.results[2]);
    assert_eq!(out.results[3], out.results[4]);
    assert_eq!(out.results[4], out.results[5]);
}

#[test]
fn poison_reaches_group_barrier_waiters() {
    let err = pgas_machine::run_with_result(generic_smp(4).with_heap_bytes(1 << 14), |pe| {
        if pe.id() == 3 {
            panic!("fault injection");
        }
        // The survivors block on a group barrier that includes the dead PE;
        // poison must release them instead of hanging the test.
        pe.machine().barrier_group(pe.id(), &[0, 1, 2, 3], 0.0);
    })
    .unwrap_err();
    assert!(err.message.contains("fault injection"), "got: {}", err.message);
}
