//! SPMD launcher: spawn one OS thread per PE, run the program closure on
//! each, propagate panics without deadlocking the rest of the job.
//!
//! Under a worker limit (`MachineConfig::with_workers` / `PGAS_WORKERS`,
//! see `crate::sched`) the threads still all spawn, but at most `W` are
//! runnable at once: each thread is admitted in `(virtual clock, pe)` order
//! and yields its slot at every blocking point. Outcomes are bit-identical
//! for every worker count; the limit only bounds host-side concurrency so
//! paper-scale jobs (thousands of PEs) fit the host.

use crate::config::MachineConfig;
use crate::critpath::CriticalPathReport;
use crate::machine::{Machine, Pe};
use crate::metrics::MetricsSnapshot;
use crate::sanitizer::{HazardKind, HazardReport};
use crate::stats::{FaultEvent, PlanDecision, StatsSnapshot};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Per-NIC traffic summary reported with a simulation outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicSnapshot {
    pub messages: u64,
    pub bytes: u64,
    pub busy_ns: u64,
}

/// Everything a finished simulation reports.
#[derive(Debug)]
pub struct SimOutcome<R> {
    /// Per-PE return values, indexed by PE id.
    pub results: Vec<R>,
    /// Final virtual clock of each PE, ns.
    pub clocks: Vec<u64>,
    /// Machine-wide operation counters.
    pub stats: StatsSnapshot,
    /// Per-op metrics (counters/gauges/histograms; empty unless metrics were
    /// enabled) with the stats counters folded in — the one queryable record
    /// of everything the run did.
    pub metrics: MetricsSnapshot,
    /// Per-node NIC traffic, indexed by node.
    pub nics: Vec<NicSnapshot>,
    /// Execution trace (empty unless `MachineConfig::trace` was set).
    pub trace: Vec<crate::trace::Span>,
    /// Serving-request lifecycle records (empty unless the run was traced
    /// and the workload marked requests via `Tracer::begin_request` /
    /// `end_request`), sorted by `(pe, id)`.
    pub requests: Vec<crate::trace::ReqRecord>,
    /// Sanitizer diagnostics (empty unless `MachineConfig::sanitizer` was
    /// `Record` — in `Panic` mode the job fails at the first hazard).
    pub hazard_reports: Vec<HazardReport>,
    /// Every strided-plan selection made during the job, in recording order
    /// (empty unless a `StridedPlanner`-backed algorithm ran).
    pub plan_decisions: Vec<PlanDecision>,
    /// Every injected fault, retry exhaustion, and PE death (empty unless a
    /// fault plan was active), ordered by (pe, issue order) for determinism.
    pub fault_events: Vec<FaultEvent>,
    /// PEs dead at the end of the job, ascending.
    pub failed_pes: Vec<usize>,
    /// Platform name the job ran on.
    pub machine: String,
}

/// One served request's end-to-end latency, decomposed along the same
/// categories as the critical-path profiler. Built by
/// [`SimOutcome::request_log`] from the request lifecycle records and the
/// spans stamped with the request's id:
///
/// - `queue_wait_ns` — open-loop admission to service start (the request sat
///   behind earlier work on its PE);
/// - `wire_ns` — NIC lane occupancy of the request's ops (span service time);
/// - `nic_contention_ns` — time those ops waited behind other traffic;
/// - `fault_delay_ns` — retry/backoff charged to the request under a fault
///   plan;
/// - `service_ns` — the remainder of begin→end: local compute and blocking
///   synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestLog {
    pub id: u64,
    pub pe: usize,
    pub arrival_ns: u64,
    pub begin_ns: u64,
    pub end_ns: u64,
    pub queue_wait_ns: u64,
    pub wire_ns: u64,
    pub nic_contention_ns: u64,
    pub fault_delay_ns: u64,
    pub service_ns: u64,
}

impl RequestLog {
    /// End-to-end latency: arrival to completion, queueing included.
    pub fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.arrival_ns)
    }
}

impl<R> SimOutcome<R> {
    /// Virtual makespan of the job: the latest final clock, ns.
    pub fn makespan_ns(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }

    /// Fold the trace back into per-request latency decompositions (see
    /// [`RequestLog`]). Empty unless the run was traced and the workload
    /// marked requests; sorted by `(pe, id)` like
    /// [`SimOutcome::requests`].
    pub fn request_log(&self) -> Vec<RequestLog> {
        use std::collections::BTreeMap;
        // req id -> (wire, nic contention, fault delay) summed over the
        // request's tagged spans.
        let mut acc: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
        for s in &self.trace {
            if s.req == 0 {
                continue;
            }
            let slot = acc.entry(s.req).or_insert((0, 0, 0));
            slot.0 += s.service_ns;
            slot.1 += s.queue_ns;
            if s.kind == crate::trace::SpanKind::Retry {
                slot.2 += s.end.saturating_sub(s.begin);
            }
        }
        self.requests
            .iter()
            .map(|r| {
                let (wire_ns, nic_contention_ns, fault_delay_ns) =
                    acc.get(&r.id).copied().unwrap_or((0, 0, 0));
                let busy = r.end_ns.saturating_sub(r.begin_ns);
                RequestLog {
                    id: r.id,
                    pe: r.pe,
                    arrival_ns: r.arrival_ns,
                    begin_ns: r.begin_ns,
                    end_ns: r.end_ns,
                    queue_wait_ns: r.begin_ns.saturating_sub(r.arrival_ns),
                    wire_ns,
                    nic_contention_ns,
                    fault_delay_ns,
                    service_ns: busy
                        .saturating_sub(wire_ns)
                        .saturating_sub(nic_contention_ns)
                        .saturating_sub(fault_delay_ns),
                }
            })
            .collect()
    }

    /// Extract the critical path from the recorded trace: the blocking chain
    /// that determined the makespan, attributed to compute / wire / NIC
    /// contention / synchronization / fault delay. Meaningful only when the
    /// run was traced; with no spans the whole makespan reads as compute.
    pub fn critical_path(&self) -> CriticalPathReport {
        crate::critpath::critical_path(&self.trace, &self.clocks)
    }

    /// Walk the span graph per request id: one exact latency tiling per
    /// served request (see `tailprof::req_paths`). Empty unless the run was
    /// traced and the workload marked requests.
    pub fn req_paths(&self) -> Vec<crate::tailprof::ReqPathReport> {
        crate::tailprof::req_paths(&self.trace, &self.requests)
    }

    /// Aggregate the per-request paths into per-SLO-window tail profiles
    /// with deterministic exemplar retention. `window_ns` comes from the
    /// run's metrics config so profiles line up with `SloReport` windows.
    pub fn tail_attribution(
        &self,
        threshold_ns: u64,
        k: usize,
        seed: u64,
    ) -> crate::tailprof::TailAttribution {
        crate::tailprof::attribute(
            &self.req_paths(),
            threshold_ns,
            self.metrics.window_ns,
            k,
            seed,
        )
    }

    /// Assert the sanitizer found nothing; panics with every report
    /// otherwise. (Only meaningful when the job ran with the sanitizer in
    /// `Record` mode.)
    pub fn expect_hazard_free(&self) {
        if self.hazard_reports.is_empty() {
            return;
        }
        let mut msg = format!("sanitizer found {} hazard(s):", self.hazard_reports.len());
        for r in &self.hazard_reports {
            msg.push_str("\n  - ");
            msg.push_str(&r.to_string());
        }
        panic!("{msg}");
    }

    /// Assert the sanitizer flagged at least one hazard of `kind` and
    /// return the first such report; panics (listing what *was* found)
    /// otherwise.
    pub fn expect_hazard(&self, kind: HazardKind) -> &HazardReport {
        self.hazard_reports.iter().find(|r| r.kind == kind).unwrap_or_else(|| {
            panic!(
                "expected a {} but the sanitizer recorded {:?}",
                kind.label(),
                self.hazard_reports
            )
        })
    }
}

/// A simulation failure: some PE panicked.
#[derive(Debug)]
pub struct SimError {
    /// PE whose panic was captured first.
    pub pe: usize,
    /// Rendered panic message.
    pub message: String,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE {} panicked: {}", self.pe, self.message)
    }
}

impl std::error::Error for SimError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `f` as an SPMD program on a fresh machine built from `cfg`,
/// returning per-PE results or the first captured failure.
///
/// `f` is shared by all PE threads; per-PE state should live inside the
/// closure body (or in the machine's heaps).
pub fn run_with_result<F, R>(cfg: MachineConfig, f: F) -> Result<SimOutcome<R>, SimError>
where
    F: Fn(Pe<'_>) -> R + Send + Sync,
    R: Send,
{
    let machine: Arc<Machine> = Machine::new(cfg);
    let n = machine.num_pes();
    let name = machine.config().name.clone();
    let stack = machine.config().stack_bytes;

    let mut slots: Vec<Result<R, SimError>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for id in 0..n {
            let machine = &machine;
            let f = &f;
            let builder = std::thread::Builder::new().name(format!("pe-{id}")).stack_size(stack);
            let handle = builder
                .spawn_scoped(scope, move || {
                    // Under a worker limit a fresh PE thread first waits for
                    // a slot (ready at clock 0); legacy mode starts at once.
                    machine.sched_acquire(id);
                    let pe = Pe::new(id, machine);
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(pe)));
                    // A finished PE is permanently quiescent for the NIC
                    // arbiter — stragglers must not wait on its clock — and
                    // gives up its worker slot.
                    machine.pe_finished(id);
                    if out.is_err() {
                        // Unblock everyone else before reporting.
                        machine.poison().poison();
                        machine.interrupt_all();
                    }
                    out
                })
                .expect("failed to spawn PE thread");
            handles.push(handle);
        }
        for (id, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(r)) => slots.push(Ok(r)),
                Ok(Err(payload)) => {
                    slots.push(Err(SimError { pe: id, message: panic_message(payload.as_ref()) }))
                }
                Err(payload) => {
                    slots.push(Err(SimError { pe: id, message: panic_message(payload.as_ref()) }))
                }
            }
        }
    });

    // Prefer reporting a "real" failure over the poison-propagation panics of
    // the other PEs.
    let mut first_err: Option<SimError> = None;
    for s in &slots {
        if let Err(e) = s {
            let is_propagated = e.message.contains("simulation poisoned");
            match &first_err {
                None => first_err = Some(SimError { pe: e.pe, message: e.message.clone() }),
                Some(cur) if cur.message.contains("simulation poisoned") && !is_propagated => {
                    first_err = Some(SimError { pe: e.pe, message: e.message.clone() })
                }
                _ => {}
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    let results: Vec<R> = slots.into_iter().map(|s| s.unwrap()).collect();
    Ok(SimOutcome {
        clocks: (0..n).map(|p| machine.clock(p)).collect(),
        stats: machine.stats().snapshot(),
        metrics: machine.metrics().snapshot(machine.stats().snapshot()),
        nics: (0..machine.config().nodes)
            .map(|node| {
                let nic = machine.nic(node);
                NicSnapshot { messages: nic.messages(), bytes: nic.bytes(), busy_ns: nic.busy_ns() }
            })
            .collect(),
        trace: machine.tracer().drain(),
        requests: machine.tracer().drain_requests(),
        hazard_reports: machine.sanitizer().take_reports(),
        plan_decisions: machine.stats().drain_plans(),
        fault_events: {
            // Per-PE order is the PE's own program order (deterministic);
            // the cross-PE interleaving in the log is scheduling noise, so
            // sort it away. at_ns breaks ties within a PE monotonically.
            let mut events = machine.stats().drain_faults();
            events.sort_by_key(|e| (e.pe, e.at_ns, e.attempt));
            events
        },
        failed_pes: machine.failed_pes(),
        machine: name,
        results,
    })
}

/// Like [`run_with_result`] but panics on failure. The common entry point
/// for examples and benchmarks.
pub fn run<F, R>(cfg: MachineConfig, f: F) -> SimOutcome<R>
where
    F: Fn(Pe<'_>) -> R + Send + Sync,
    R: Send,
{
    match run_with_result(cfg, f) {
        Ok(o) => o,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::generic_smp;

    #[test]
    fn runs_all_pes_and_collects_results() {
        let out = run(generic_smp(8), |pe| pe.id() * 10);
        assert_eq!(out.results, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(out.clocks, vec![0; 8]);
        assert_eq!(out.machine, "generic-smp");
    }

    #[test]
    fn nic_snapshots_reflect_traffic() {
        let out = run(crate::platforms::stampede(2, 1), |pe| {
            if pe.id() == 0 {
                let m = pe.machine();
                let occ = 500;
                m.nic(0).reserve_tx(0, occ, 4096);
                m.nic(1).reserve_rx(700, occ, 4096);
            }
        });
        assert_eq!(out.nics.len(), 2);
        assert_eq!(out.nics[0], super::NicSnapshot { messages: 1, bytes: 4096, busy_ns: 500 });
        assert_eq!(out.nics[1].messages, 1);
    }

    #[test]
    fn makespan_is_max_clock() {
        let out = run(generic_smp(4), |pe| {
            pe.advance(100.0 * (pe.id() as f64 + 1.0));
        });
        assert_eq!(out.makespan_ns(), 400);
    }

    #[test]
    fn panic_on_one_pe_is_reported_not_hung() {
        let err = run_with_result(generic_smp(4), |pe| {
            if pe.id() == 2 {
                panic!("boom on pe 2");
            }
            // Everyone else blocks on a barrier that can never complete;
            // poison must release them.
            pe.machine().barrier_all(pe.id(), 0.0);
        })
        .unwrap_err();
        assert_eq!(err.pe, 2);
        assert!(err.message.contains("boom"), "got: {}", err.message);
    }

    #[test]
    fn barrier_all_aligns_clocks() {
        let out = run(generic_smp(4), |pe| {
            pe.advance(pe.id() as f64 * 50.0);
            pe.machine().barrier_all(pe.id(), 7.0)
        });
        for r in out.results {
            assert_eq!(r, 150 + 7);
        }
    }

    #[test]
    fn group_barrier_only_involves_members() {
        let out = run(generic_smp(4), |pe| {
            if pe.id() < 2 {
                pe.advance(100.0 * (pe.id() + 1) as f64);
                pe.machine().barrier_group(pe.id(), &[0, 1], 0.0)
            } else {
                pe.now()
            }
        });
        assert_eq!(out.results[0], 200);
        assert_eq!(out.results[1], 200);
        assert_eq!(out.results[2], 0);
        assert_eq!(out.results[3], 0);
    }

    #[test]
    fn request_log_decomposes_end_to_end_latency() {
        use crate::trace::{Span, SpanKind};
        let out = crate::trace::with_forced_tracing(true, || {
            run(generic_smp(2), |pe| {
                if pe.id() == 0 {
                    let t = pe.machine().tracer();
                    let req = 1u64;
                    t.begin_request(0, req, 100, 150);
                    let mut s = Span::op(0, SpanKind::Put, 150, 450, Some(1), 64);
                    s.queue_ns = 50;
                    s.service_ns = 200;
                    t.record(s);
                    t.record(Span::op(0, SpanKind::Retry, 450, 500, Some(1), 0));
                    t.end_request(0, 600);
                }
            })
        });
        assert_eq!(out.requests.len(), 1);
        let log = out.request_log();
        assert_eq!(log.len(), 1);
        let r = &log[0];
        assert_eq!(r.queue_wait_ns, 50, "arrival 100, service began 150");
        assert_eq!(r.wire_ns, 200);
        assert_eq!(r.nic_contention_ns, 50);
        assert_eq!(r.fault_delay_ns, 50);
        assert_eq!(r.service_ns, 450 - 200 - 50 - 50, "remainder of begin..end");
        assert_eq!(r.total_ns(), 500);
        assert_eq!(
            r.queue_wait_ns + r.wire_ns + r.nic_contention_ns + r.fault_delay_ns + r.service_ns,
            r.total_ns(),
            "decomposition sums to the end-to-end latency"
        );
    }

    #[test]
    fn wait_on_sees_remote_heap_write() {
        use std::sync::atomic::Ordering;
        let out = run(generic_smp(2), |pe| {
            let m = pe.machine();
            if pe.id() == 0 {
                m.wait_on(0, || m.heap(0).atomic64(0).load(Ordering::Acquire) == 42);
                m.heap(0).atomic64(0).load(Ordering::Acquire)
            } else {
                m.heap(0).atomic64(0).store(42, Ordering::Release);
                m.notify_pe(0);
                42
            }
        });
        assert_eq!(out.results, vec![42, 42]);
    }
}
