//! Critical-path profiler: where did the makespan actually go?
//!
//! Given the completed span/flow graph of a run ([`crate::trace::Span`]) and
//! the final per-PE clocks, this module extracts the *blocking chain* that
//! determined the final virtual time and attributes every nanosecond of it
//! to one of five categories:
//!
//! - **compute** — the PE on the chain was executing (or idle between spans);
//! - **wire** — latency + serialization of payloads on the chain;
//! - **nic contention** — time a chain operation sat in a NIC queue behind
//!   earlier traffic (the `queue_ns` breakdown from the NIC model);
//! - **synchronization** — barrier/wait time after the last arriver showed
//!   up, and waits on remote flags;
//! - **fault delay** — injected-fault detection timeouts and retry backoff.
//!
//! The walk runs **backwards** from the PE that finished last. At a barrier
//! it hops to the *last arriver* (the PE that actually gated the barrier); at
//! a quiet it pairs the wait with the flow whose remote completion bounded it
//! and splits that flow's queue time out as NIC contention. The emitted
//! segments tile `[0, makespan]` exactly — by construction the category
//! totals sum to the run's total virtual time, which is the invariant the
//! acceptance tests check.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::trace::{Span, SpanKind};

/// Attribution category for a slice of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PathCategory {
    Compute,
    Wire,
    NicContention,
    Synchronization,
    FaultDelay,
}

/// All categories, in display order.
pub const CATEGORIES: [PathCategory; 5] = [
    PathCategory::Compute,
    PathCategory::Wire,
    PathCategory::NicContention,
    PathCategory::Synchronization,
    PathCategory::FaultDelay,
];

impl PathCategory {
    pub fn label(self) -> &'static str {
        match self {
            PathCategory::Compute => "compute",
            PathCategory::Wire => "wire",
            PathCategory::NicContention => "nic_contention",
            PathCategory::Synchronization => "synchronization",
            PathCategory::FaultDelay => "fault_delay",
        }
    }

    /// Inverse of [`PathCategory::label`], for reading serialized reports.
    pub fn parse(s: &str) -> Option<PathCategory> {
        CATEGORIES.iter().copied().find(|c| c.label() == s)
    }
}

/// One slice of the blocking chain. Segments are chronological and tile
/// `[0, makespan]` with no gaps or overlaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// The PE the chain ran through during this slice.
    pub pe: usize,
    pub category: PathCategory,
    /// Virtual-time window, ns.
    pub begin: u64,
    pub end: u64,
    /// The span kind (or "idle") this slice was attributed from.
    pub what: &'static str,
}

impl PathSegment {
    pub fn duration_ns(&self) -> u64 {
        self.end - self.begin
    }
}

/// The extracted critical path of one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CriticalPathReport {
    pub makespan_ns: u64,
    /// Chronological slices tiling `[0, makespan]`.
    pub segments: Vec<PathSegment>,
}

impl CriticalPathReport {
    /// Total attributed time per category, in [`CATEGORIES`] order.
    /// The values sum to [`CriticalPathReport::makespan_ns`].
    pub fn totals_ns(&self) -> [(PathCategory, u64); 5] {
        let mut totals = CATEGORIES.map(|c| (c, 0u64));
        for seg in &self.segments {
            let slot = totals.iter_mut().find(|(c, _)| *c == seg.category).unwrap();
            slot.1 += seg.duration_ns();
        }
        totals
    }

    /// Sum of all segment durations; equals the makespan by construction.
    pub fn total_ns(&self) -> u64 {
        self.segments.iter().map(|s| s.duration_ns()).sum()
    }

    /// Human-readable breakdown.
    pub fn render(&self) -> String {
        let mut out = format!(
            "critical path: {} ns total across {} segments\n",
            self.makespan_ns,
            self.segments.len()
        );
        for (cat, ns) in self.totals_ns() {
            let pct = if self.makespan_ns > 0 {
                100.0 * ns as f64 / self.makespan_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!("  {:<16} {:>14} ns  {:>5.1}%\n", cat.label(), ns, pct));
        }
        out
    }

    /// JSON export (stable field order).
    pub fn to_json(&self) -> Json {
        let totals = self
            .totals_ns()
            .iter()
            .map(|&(c, ns)| (c.label().to_string(), Json::uint(ns as usize)))
            .collect();
        let segments = self
            .segments
            .iter()
            .map(|s| {
                Json::Object(vec![
                    ("pe".to_string(), Json::uint(s.pe)),
                    ("category".to_string(), Json::str(s.category.label())),
                    ("begin_ns".to_string(), Json::uint(s.begin as usize)),
                    ("end_ns".to_string(), Json::uint(s.end as usize)),
                    ("what".to_string(), Json::str(s.what)),
                ])
            })
            .collect();
        Json::Object(vec![
            ("makespan_ns".to_string(), Json::uint(self.makespan_ns as usize)),
            ("totals_ns".to_string(), Json::Object(totals)),
            ("segments".to_string(), Json::Array(segments)),
        ])
    }

    /// Runs of consecutive segments on the same PE with the same category,
    /// merged into one segment each (the chain often bounces between a
    /// handful of states, producing long same-category runs). Because raw
    /// segments tile the makespan, merged ones do too; `count` records how
    /// many raw segments each one absorbed.
    pub fn merged_segments(&self) -> Vec<(PathSegment, u64)> {
        let mut merged: Vec<(PathSegment, u64)> = Vec::new();
        for seg in &self.segments {
            match merged.last_mut() {
                Some((last, count))
                    if last.pe == seg.pe
                        && last.category == seg.category
                        && last.end == seg.begin =>
                {
                    last.end = seg.end;
                    *count += 1;
                }
                _ => merged.push((seg.clone(), 1)),
            }
        }
        merged
    }

    /// Compact JSON for the committed `results/*.critpath.json` sidecars:
    /// same `makespan_ns`/`totals_ns` as [`CriticalPathReport::to_json`],
    /// but with consecutive same-(PE, category) segments aggregated (each
    /// carries the count of raw segments it merged, and the `what` of the
    /// first). `raw_segments` preserves the pre-merge count.
    pub fn to_sidecar_json(&self) -> Json {
        let totals = self
            .totals_ns()
            .iter()
            .map(|&(c, ns)| (c.label().to_string(), Json::uint(ns as usize)))
            .collect();
        let segments = self
            .merged_segments()
            .iter()
            .map(|(s, count)| {
                Json::Object(vec![
                    ("pe".to_string(), Json::uint(s.pe)),
                    ("category".to_string(), Json::str(s.category.label())),
                    ("begin_ns".to_string(), Json::uint(s.begin as usize)),
                    ("end_ns".to_string(), Json::uint(s.end as usize)),
                    ("what".to_string(), Json::str(s.what)),
                    ("count".to_string(), Json::uint(*count as usize)),
                ])
            })
            .collect();
        Json::Object(vec![
            ("makespan_ns".to_string(), Json::uint(self.makespan_ns as usize)),
            ("totals_ns".to_string(), Json::Object(totals)),
            ("raw_segments".to_string(), Json::uint(self.segments.len())),
            ("segments".to_string(), Json::Array(segments)),
        ])
    }
}

struct PeSpans {
    /// Sorted by `(begin, id)`.
    spans: Vec<Span>,
    /// `prefix_max_end[i]` = max end over `spans[0..=i]`.
    prefix_max_end: Vec<u64>,
}

/// Extract the critical path from a run's spans and final clocks.
///
/// With tracing disabled (no spans) the whole makespan is attributed to
/// compute on the last-finishing PE — the profiler degrades gracefully
/// rather than failing.
pub fn critical_path(spans: &[Span], clocks: &[u64]) -> CriticalPathReport {
    let makespan = clocks.iter().copied().max().unwrap_or(0);
    if makespan == 0 {
        return CriticalPathReport { makespan_ns: 0, segments: Vec::new() };
    }
    let num_pes = clocks.len();
    let mut per_pe: Vec<Vec<Span>> = vec![Vec::new(); num_pes];
    // Barrier end time -> arrivals (begin, pe), for last-arriver hops.
    let mut barrier_arrivals: BTreeMap<u64, Vec<(u64, usize)>> = BTreeMap::new();
    // (pe, remote_end) -> flow span index info for quiet pairing.
    let mut flows: BTreeMap<(usize, u64), Span> = BTreeMap::new();
    for s in spans {
        if s.pe >= num_pes {
            continue;
        }
        per_pe[s.pe].push(*s);
        if s.kind == SpanKind::Barrier {
            barrier_arrivals.entry(s.end).or_default().push((s.begin, s.pe));
        }
        if matches!(s.kind, SpanKind::Put | SpanKind::Get | SpanKind::Amo) && s.remote_end > 0 {
            flows.insert((s.pe, s.remote_end), *s);
        }
    }
    let per_pe: Vec<PeSpans> = per_pe
        .into_iter()
        .map(|mut spans| {
            spans.sort_by_key(|s| (s.begin, s.id));
            let mut prefix_max_end = Vec::with_capacity(spans.len());
            let mut m = 0u64;
            for s in &spans {
                m = m.max(s.end);
                prefix_max_end.push(m);
            }
            PeSpans { spans, prefix_max_end }
        })
        .collect();

    // Start on the PE that finished last (lowest index wins ties).
    let mut pe = clocks.iter().position(|&c| c == makespan).unwrap_or(0);
    let mut cursor = makespan;
    let mut segments: Vec<PathSegment> = Vec::new();
    let push = |segments: &mut Vec<PathSegment>,
                pe: usize,
                category: PathCategory,
                begin: u64,
                end: u64,
                what: &'static str| {
        if end > begin {
            segments.push(PathSegment { pe, category, begin, end, what });
        }
    };

    while cursor > 0 {
        let buf = &per_pe[pe];
        // Last span on this PE beginning strictly before the cursor.
        let idx = buf.spans.partition_point(|s| s.begin < cursor);
        if idx == 0 {
            // Nothing earlier: the PE ran (or sat) from time 0.
            push(&mut segments, pe, PathCategory::Compute, 0, cursor, "idle");
            cursor = 0;
            continue;
        }
        let idx = idx - 1;
        if buf.prefix_max_end[idx] < cursor {
            // Gap between the last op and the cursor: the PE was computing.
            let prev_end = buf.prefix_max_end[idx];
            push(&mut segments, pe, PathCategory::Compute, prev_end, cursor, "idle");
            cursor = prev_end;
            continue;
        }
        // Innermost span covering the cursor: scan back for the latest begin
        // whose end reaches the cursor (children begin after parents, so the
        // first hit is the innermost).
        let mut i = idx;
        while buf.spans[i].end < cursor {
            i -= 1;
        }
        let s = buf.spans[i];
        let seg_begin = s.begin;
        match s.kind {
            SpanKind::Barrier => {
                // The barrier was gated by its last arriver; hop to it.
                let arrivals = barrier_arrivals.get(&s.end);
                let last = arrivals
                    .and_then(|a| {
                        a.iter().copied().max_by_key(|&(begin, pe)| (begin, usize::MAX - pe))
                    })
                    .unwrap_or((seg_begin, pe));
                if last.0 < cursor {
                    push(
                        &mut segments,
                        pe,
                        PathCategory::Synchronization,
                        last.0,
                        cursor,
                        s.kind.label(),
                    );
                    pe = last.1;
                    cursor = last.0;
                } else {
                    push(
                        &mut segments,
                        pe,
                        PathCategory::Synchronization,
                        seg_begin,
                        cursor,
                        s.kind.label(),
                    );
                    cursor = seg_begin;
                }
            }
            SpanKind::Quiet => {
                // Pair with the flow whose remote completion bounded the
                // quiet (ctx stores that target in the span's remote_end).
                let flow = flows.get(&(s.pe, s.remote_end));
                let len = cursor - seg_begin;
                match flow {
                    Some(f) => {
                        // Segments accumulate newest-first; push the later
                        // (wire) slice before the earlier (queue) slice.
                        let nic = f.queue_ns.min(len);
                        push(
                            &mut segments,
                            pe,
                            PathCategory::Wire,
                            seg_begin + nic,
                            cursor,
                            "quiet",
                        );
                        push(
                            &mut segments,
                            pe,
                            PathCategory::NicContention,
                            seg_begin,
                            seg_begin + nic,
                            "quiet",
                        );
                    }
                    None => {
                        let cat = if s.remote_end > seg_begin {
                            PathCategory::Wire
                        } else {
                            PathCategory::Synchronization
                        };
                        push(&mut segments, pe, cat, seg_begin, cursor, "quiet");
                    }
                }
                cursor = seg_begin;
            }
            SpanKind::WaitUntil => {
                push(
                    &mut segments,
                    pe,
                    PathCategory::Synchronization,
                    seg_begin,
                    cursor,
                    s.kind.label(),
                );
                cursor = seg_begin;
            }
            SpanKind::Put | SpanKind::Get | SpanKind::Amo => {
                let len = cursor - seg_begin;
                let nic = s.queue_ns.min(len);
                push(
                    &mut segments,
                    pe,
                    PathCategory::Wire,
                    seg_begin + nic,
                    cursor,
                    s.kind.label(),
                );
                push(
                    &mut segments,
                    pe,
                    PathCategory::NicContention,
                    seg_begin,
                    seg_begin + nic,
                    s.kind.label(),
                );
                cursor = seg_begin;
            }
            SpanKind::Retry | SpanKind::Fault => {
                push(
                    &mut segments,
                    pe,
                    PathCategory::FaultDelay,
                    seg_begin,
                    cursor,
                    s.kind.label(),
                );
                cursor = seg_begin;
            }
            SpanKind::Compute => {
                push(&mut segments, pe, PathCategory::Compute, seg_begin, cursor, s.kind.label());
                cursor = seg_begin;
            }
            SpanKind::Collective => {
                // Only reached for collective time not covered by a child
                // span (flag polls, internal bookkeeping): synchronization.
                push(
                    &mut segments,
                    pe,
                    PathCategory::Synchronization,
                    seg_begin,
                    cursor,
                    s.kind.label(),
                );
                cursor = seg_begin;
            }
        }
    }
    segments.reverse();
    CriticalPathReport { makespan_ns: makespan, segments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pe: usize, kind: SpanKind, begin: u64, end: u64) -> Span {
        Span::op(pe, kind, begin, end, None, 0)
    }

    #[test]
    fn empty_trace_is_all_compute() {
        let report = critical_path(&[], &[500, 300]);
        assert_eq!(report.makespan_ns, 500);
        assert_eq!(report.total_ns(), 500);
        assert_eq!(report.segments.len(), 1);
        assert_eq!(report.segments[0].category, PathCategory::Compute);
        assert_eq!(report.segments[0].pe, 0);
    }

    #[test]
    fn zero_makespan_is_empty() {
        let report = critical_path(&[], &[0, 0]);
        assert_eq!(report.makespan_ns, 0);
        assert!(report.segments.is_empty());
    }

    #[test]
    fn barrier_hops_to_last_arriver() {
        // PE 0 arrives at 10, PE 1 computes until 100 and arrives last;
        // barrier completes at 110 for both.
        let spans = vec![
            span(0, SpanKind::Barrier, 10, 110),
            span(1, SpanKind::Compute, 0, 100),
            span(1, SpanKind::Barrier, 100, 110),
        ];
        let report = critical_path(&spans, &[110, 110]);
        assert_eq!(report.total_ns(), 110);
        let totals: BTreeMap<_, _> = report.totals_ns().into_iter().collect();
        assert_eq!(totals[&PathCategory::Synchronization], 10);
        assert_eq!(totals[&PathCategory::Compute], 100);
        // The compute slice is attributed to the last arriver, PE 1.
        let compute = report.segments.iter().find(|s| s.category == PathCategory::Compute);
        assert_eq!(compute.unwrap().pe, 1);
    }

    #[test]
    fn queue_time_splits_out_as_nic_contention() {
        let mut put = span(0, SpanKind::Put, 0, 100);
        put.queue_ns = 30;
        put.service_ns = 50;
        let report = critical_path(&[put], &[100]);
        assert_eq!(report.total_ns(), 100);
        let totals: BTreeMap<_, _> = report.totals_ns().into_iter().collect();
        assert_eq!(totals[&PathCategory::NicContention], 30);
        assert_eq!(totals[&PathCategory::Wire], 70);
    }

    #[test]
    fn quiet_pairs_with_the_bounding_flow() {
        // A non-blocking put whose flow completes remotely at 900; the
        // quiet waits from 200 to 900 on it.
        let mut put = span(0, SpanKind::Put, 100, 200);
        put.queue_ns = 300;
        put.remote_begin = 850;
        put.remote_end = 900;
        put.peer = Some(1);
        let mut quiet = span(0, SpanKind::Quiet, 200, 900);
        quiet.remote_end = 900;
        let report = critical_path(&[put, quiet], &[900, 0]);
        assert_eq!(report.total_ns(), 900);
        let totals: BTreeMap<_, _> = report.totals_ns().into_iter().collect();
        // 300 ns of the quiet wait was the flow queueing behind other
        // traffic; the issue span itself contributes its own split.
        assert!(totals[&PathCategory::NicContention] >= 300);
        assert!(totals[&PathCategory::Wire] > 0);
    }

    #[test]
    fn segments_tile_the_makespan_chronologically() {
        let mut put = span(0, SpanKind::Put, 50, 150);
        put.queue_ns = 20;
        let spans = vec![
            span(0, SpanKind::Compute, 0, 50),
            put,
            span(0, SpanKind::Barrier, 150, 200),
            span(1, SpanKind::Barrier, 120, 200),
        ];
        let report = critical_path(&spans, &[200, 200]);
        assert_eq!(report.total_ns(), report.makespan_ns);
        let mut t = 0;
        for seg in &report.segments {
            assert_eq!(seg.begin, t, "segments are contiguous");
            t = seg.end;
        }
        assert_eq!(t, report.makespan_ns);
    }

    #[test]
    fn report_renders_and_exports_json() {
        let report = critical_path(&[span(0, SpanKind::Compute, 0, 100)], &[100]);
        let text = report.render();
        assert!(text.contains("critical path: 100 ns"));
        assert!(text.contains("compute"));
        let json = report.to_json().pretty();
        let parsed = crate::json::parse(&json).unwrap();
        assert_eq!(parsed.get("makespan_ns").and_then(|v| v.as_i64()), Some(100));
        assert!(parsed.get("totals_ns").is_some());
    }

    #[test]
    fn category_labels_round_trip_through_parse() {
        for c in CATEGORIES {
            assert_eq!(PathCategory::parse(c.label()), Some(c));
        }
        assert_eq!(PathCategory::parse("warp_drive"), None);
    }

    #[test]
    fn sidecar_merges_consecutive_same_category_runs() {
        // Three consecutive compute slices on PE 0, then a wire slice, then
        // compute again: 5 raw segments -> 3 merged.
        let report = CriticalPathReport {
            makespan_ns: 500,
            segments: vec![
                PathSegment {
                    pe: 0,
                    category: PathCategory::Compute,
                    begin: 0,
                    end: 100,
                    what: "compute",
                },
                PathSegment {
                    pe: 0,
                    category: PathCategory::Compute,
                    begin: 100,
                    end: 150,
                    what: "idle",
                },
                PathSegment {
                    pe: 0,
                    category: PathCategory::Compute,
                    begin: 150,
                    end: 200,
                    what: "compute",
                },
                PathSegment {
                    pe: 0,
                    category: PathCategory::Wire,
                    begin: 200,
                    end: 400,
                    what: "put",
                },
                PathSegment {
                    pe: 0,
                    category: PathCategory::Compute,
                    begin: 400,
                    end: 500,
                    what: "idle",
                },
            ],
        };
        let merged = report.merged_segments();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].0.end, 200);
        assert_eq!(merged[0].1, 3, "first run absorbed three raw segments");
        // Merged segments still tile the makespan.
        let mut t = 0;
        for (seg, _) in &merged {
            assert_eq!(seg.begin, t);
            t = seg.end;
        }
        assert_eq!(t, report.makespan_ns);
        // And the merged total per category matches the raw totals.
        let json = report.to_sidecar_json().pretty();
        let parsed = crate::json::parse(&json).unwrap();
        assert_eq!(parsed.get("raw_segments").and_then(|v| v.as_i64()), Some(5));
        assert_eq!(parsed.get("segments").and_then(|v| v.as_array()).map(|a| a.len()), Some(3));
    }

    #[test]
    fn sidecar_does_not_merge_across_pe_hops() {
        let report = CriticalPathReport {
            makespan_ns: 200,
            segments: vec![
                PathSegment {
                    pe: 0,
                    category: PathCategory::Compute,
                    begin: 0,
                    end: 100,
                    what: "idle",
                },
                PathSegment {
                    pe: 1,
                    category: PathCategory::Compute,
                    begin: 100,
                    end: 200,
                    what: "idle",
                },
            ],
        };
        assert_eq!(report.merged_segments().len(), 2);
    }

    #[test]
    fn retry_time_is_fault_delay() {
        let spans = vec![span(0, SpanKind::Retry, 10, 60)];
        let report = critical_path(&spans, &[60]);
        let totals: BTreeMap<_, _> = report.totals_ns().into_iter().collect();
        assert_eq!(totals[&PathCategory::FaultDelay], 50);
        assert_eq!(totals[&PathCategory::Compute], 10);
        assert_eq!(report.total_ns(), 60);
    }
}
