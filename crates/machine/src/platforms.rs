//! Platform presets mirroring Table III of the paper.
//!
//! The paper evaluates on three machines:
//!
//! | Cluster     | Processor                      | Cores/node | Interconnect        |
//! |-------------|--------------------------------|-----------:|---------------------|
//! | Stampede    | Intel Xeon E5 (Sandy Bridge)   | 16         | InfiniBand Mellanox |
//! | Cray XC30   | Intel Xeon E5 (Sandy Bridge)   | 16         | Aries / Dragonfly   |
//! | Titan (XK7) | AMD Opteron                    | 16         | Cray Gemini         |
//!
//! The presets encode publicly documented ballpark hardware characteristics of
//! those interconnects (FDR InfiniBand, Gemini, Aries). They set the *wire*
//! level only; per-library software behaviour (why Cray SHMEM beats GASNet on
//! Titan, why MVAPICH2-X `shmem_iput` is slow, ...) is layered on by the
//! conduit profiles in `pgas-conduit`.

use crate::config::{ComputeParams, LinkParams, MachineConfig, WireParams};
use crate::sanitizer::SanitizerMode;

/// Identifier for a paper platform, used by benchmark harnesses to pick both
/// a `MachineConfig` and the set of conduit profiles evaluated on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// TACC Stampede: Sandy Bridge + Mellanox FDR InfiniBand.
    Stampede,
    /// OLCF Titan: AMD Opteron + Cray Gemini.
    Titan,
    /// Cray XC30: Sandy Bridge + Aries (Dragonfly).
    CrayXc30,
    /// A single shared-memory node; not in the paper, used for examples/tests.
    GenericSmp,
}

impl Platform {
    /// Construct the corresponding configuration.
    pub fn config(self, nodes: usize, cores_per_node: usize) -> MachineConfig {
        match self {
            Platform::Stampede => stampede(nodes, cores_per_node),
            Platform::Titan => titan(nodes, cores_per_node),
            Platform::CrayXc30 => cray_xc30(nodes, cores_per_node),
            Platform::GenericSmp => generic_smp(cores_per_node),
        }
    }

    /// Name as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Stampede => "stampede",
            Platform::Titan => "titan",
            Platform::CrayXc30 => "cray-xc30",
            Platform::GenericSmp => "generic-smp",
        }
    }

    /// All platforms that appear in the paper's evaluation.
    pub fn paper_platforms() -> [Platform; 3] {
        [Platform::Stampede, Platform::Titan, Platform::CrayXc30]
    }
}

const DEFAULT_HEAP: usize = 1 << 20; // 1 MiB per PE
const DEFAULT_STACK: usize = 1 << 19; // 512 KiB per PE thread

/// TACC Stampede: FDR InfiniBand (~6.8 GB/s peak per port, ~1 us MPI latency).
pub fn stampede(nodes: usize, cores_per_node: usize) -> MachineConfig {
    MachineConfig {
        name: "stampede".into(),
        nodes,
        cores_per_node,
        heap_bytes: DEFAULT_HEAP,
        wire: WireParams {
            inter: LinkParams { latency_ns: 900.0, bytes_per_ns: 6.0 },
            intra: LinkParams { latency_ns: 80.0, bytes_per_ns: 12.0 },
            nic_msg_overhead_ns: 200.0,
            amo_ns: 350.0,
        },
        compute: ComputeParams { core_gflops: 2.0, local_op_ns: 1.0 },
        stack_bytes: DEFAULT_STACK,
        trace: false,
        metrics: false,
        metrics_window_ns: 0,
        sanitizer: SanitizerMode::Off,
        faults: None,
        stream: None,
        deterministic_nic: false,
        workers: None,
        aggregation: None,
        checksums: None,
    }
}

/// OLCF Titan (Cray XK7): Gemini interconnect — higher latency than Aries,
/// good hardware AMO support (exploited by Cray SHMEM for locks).
pub fn titan(nodes: usize, cores_per_node: usize) -> MachineConfig {
    MachineConfig {
        name: "titan".into(),
        nodes,
        cores_per_node,
        heap_bytes: DEFAULT_HEAP,
        wire: WireParams {
            inter: LinkParams { latency_ns: 1400.0, bytes_per_ns: 5.0 },
            intra: LinkParams { latency_ns: 90.0, bytes_per_ns: 10.0 },
            nic_msg_overhead_ns: 250.0,
            amo_ns: 150.0,
        },
        compute: ComputeParams { core_gflops: 1.2, local_op_ns: 1.2 },
        stack_bytes: DEFAULT_STACK,
        trace: false,
        metrics: false,
        metrics_window_ns: 0,
        sanitizer: SanitizerMode::Off,
        faults: None,
        stream: None,
        deterministic_nic: false,
        workers: None,
        aggregation: None,
        checksums: None,
    }
}

/// Cray XC30: Aries / Dragonfly — lowest latency, highest bandwidth of the
/// three, fast hardware AMOs.
pub fn cray_xc30(nodes: usize, cores_per_node: usize) -> MachineConfig {
    MachineConfig {
        name: "cray-xc30".into(),
        nodes,
        cores_per_node,
        heap_bytes: DEFAULT_HEAP,
        wire: WireParams {
            inter: LinkParams { latency_ns: 700.0, bytes_per_ns: 9.0 },
            intra: LinkParams { latency_ns: 80.0, bytes_per_ns: 12.0 },
            nic_msg_overhead_ns: 150.0,
            amo_ns: 100.0,
        },
        compute: ComputeParams { core_gflops: 2.0, local_op_ns: 1.0 },
        stack_bytes: DEFAULT_STACK,
        trace: false,
        metrics: false,
        metrics_window_ns: 0,
        sanitizer: SanitizerMode::Off,
        faults: None,
        stream: None,
        deterministic_nic: false,
        workers: None,
        aggregation: None,
        checksums: None,
    }
}

/// One shared-memory node with `cores` PEs: everything goes over the
/// intra-node fabric. Handy for examples and fast tests.
pub fn generic_smp(cores: usize) -> MachineConfig {
    MachineConfig {
        name: "generic-smp".into(),
        nodes: 1,
        cores_per_node: cores,
        heap_bytes: DEFAULT_HEAP,
        wire: WireParams {
            inter: LinkParams { latency_ns: 1000.0, bytes_per_ns: 5.0 },
            intra: LinkParams { latency_ns: 60.0, bytes_per_ns: 16.0 },
            nic_msg_overhead_ns: 100.0,
            amo_ns: 60.0,
        },
        compute: ComputeParams { core_gflops: 2.5, local_op_ns: 0.8 },
        stack_bytes: DEFAULT_STACK,
        trace: false,
        metrics: false,
        metrics_window_ns: 0,
        sanitizer: SanitizerMode::Off,
        faults: None,
        stream: None,
        deterministic_nic: false,
        workers: None,
        aggregation: None,
        checksums: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc30_is_fastest_wire() {
        let s = stampede(2, 16);
        let t = titan(2, 16);
        let x = cray_xc30(2, 16);
        assert!(x.wire.inter.latency_ns < s.wire.inter.latency_ns);
        assert!(s.wire.inter.latency_ns < t.wire.inter.latency_ns);
        assert!(x.wire.inter.bytes_per_ns > s.wire.inter.bytes_per_ns);
        assert!(s.wire.inter.bytes_per_ns > t.wire.inter.bytes_per_ns);
    }

    #[test]
    fn platform_config_roundtrip() {
        for p in Platform::paper_platforms() {
            let cfg = p.config(2, 16);
            assert_eq!(cfg.name, p.name());
            assert_eq!(cfg.total_pes(), 32);
        }
        assert_eq!(Platform::GenericSmp.config(3, 4).total_pes(), 4);
    }

    #[test]
    fn amo_hardware_fast_on_cray_interconnects() {
        // The paper's lock results rely on Gemini/Aries having fast remote
        // atomics relative to IB-verbs emulation on Stampede.
        assert!(titan(1, 1).wire.amo_ns < stampede(1, 1).wire.amo_ns);
        assert!(cray_xc30(1, 1).wire.amo_ns < stampede(1, 1).wire.amo_ns);
    }
}
