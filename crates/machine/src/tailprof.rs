//! Per-request critical paths, window-level tail profiles and SLO exemplars.
//!
//! [`crate::critpath`] explains a run's *makespan*; [`crate::slo`] says which
//! windows violated an objective. This module closes the loop from a
//! burn-rate alert back to the requests that caused it: it generalizes the
//! critical-path walk so it runs *per request id* (spans carry request ids —
//! see [`crate::trace::Tracer::begin_request`]) and tiles every request's
//! end-to-end latency into six phases:
//!
//! - **queue-wait** — admitted by the open-loop clock but not yet served;
//! - **wire** — NIC service time of the ops the request issued;
//! - **nic-contention** — time those ops waited behind other traffic;
//! - **synchronization** — barriers, waits and unpaired completion stalls;
//! - **fault-delay** — detection timeouts and retry backoff under faults;
//! - **handler-compute** — the serving PE's own work (and any residue).
//!
//! Per-request reports aggregate into per-SLO-window [`TailProfile`]s:
//! phase totals split between requests *above* the objective threshold and
//! those below it, a `dominant_cause` per window, and Prometheus-style
//! **exemplars** — the k worst request ids of the window, retained by
//! [`TailSampler`]. The sampler is a deterministic virtual-time tail
//! reservoir: it keys on `(latency, mix(seed ^ id), id)`, a total order over
//! requests, so the retained set is a pure function of the run's virtual
//! behaviour and the configured seed — bit-identical across `PGAS_WORKERS`
//! pool sizes, like every other digest in the tree.
//!
//! [`TailAttribution::annotate`] folds the profiles back into an
//! [`SloReport`]: every window gains its dominant cause and every fast/slow
//! burn alert carries the worst exemplars of the trailing span that fired it.

use crate::json::Json;
use crate::slo::SloReport;
use crate::trace::{ReqRecord, Span, SpanKind};
use std::collections::BTreeMap;

/// Default exemplar count retained per window (the `k` in "k worst").
pub const DEFAULT_EXEMPLARS: usize = 5;

/// One phase of a request's latency decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReqPhase {
    /// Admitted (open-loop arrival) but the serving PE had not started yet.
    QueueWait,
    /// NIC lane occupancy of the ops the request issued.
    Wire,
    /// Time the request's ops waited behind earlier traffic on the NICs.
    NicContention,
    /// Barriers, waits, and completion stalls not bounded by a known flow.
    Synchronization,
    /// Fault detection timeouts and retry backoff.
    FaultDelay,
    /// The serving PE's own compute, plus any untraced residue.
    HandlerCompute,
}

/// Every phase, in presentation (and tie-break) order.
pub const REQ_PHASES: [ReqPhase; 6] = [
    ReqPhase::QueueWait,
    ReqPhase::Wire,
    ReqPhase::NicContention,
    ReqPhase::Synchronization,
    ReqPhase::FaultDelay,
    ReqPhase::HandlerCompute,
];

impl ReqPhase {
    pub fn label(self) -> &'static str {
        match self {
            ReqPhase::QueueWait => "queue_wait",
            ReqPhase::Wire => "wire",
            ReqPhase::NicContention => "nic_contention",
            ReqPhase::Synchronization => "synchronization",
            ReqPhase::FaultDelay => "fault_delay",
            ReqPhase::HandlerCompute => "handler_compute",
        }
    }

    pub fn parse(s: &str) -> Option<ReqPhase> {
        REQ_PHASES.into_iter().find(|p| p.label() == s)
    }
}

/// One request's latency, tiled exactly into the six [`ReqPhase`]s:
/// `phase_ns` sums to `end_ns - arrival_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqPathReport {
    pub id: u64,
    pub pe: usize,
    pub arrival_ns: u64,
    pub begin_ns: u64,
    pub end_ns: u64,
    /// Phase durations indexed by [`REQ_PHASES`] order.
    pub phase_ns: [u64; 6],
}

impl ReqPathReport {
    /// End-to-end latency (arrival to completion), ns.
    pub fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.arrival_ns)
    }

    /// The phase this request spent the most time in (ties break in
    /// [`REQ_PHASES`] order).
    pub fn dominant_phase(&self) -> ReqPhase {
        let mut best = 0usize;
        for (i, &v) in self.phase_ns.iter().enumerate() {
            if v > self.phase_ns[best] {
                best = i;
            }
        }
        REQ_PHASES[best]
    }
}

/// Charge the segment `[a, b)` of span `s` to phases. `flow_queue` is the
/// queue-wait of the flow a paired quiet was bounded by, when known.
fn charge(phase_ns: &mut [u64; 6], s: &Span, a: u64, b: u64, flow_queue: Option<u64>) {
    let len = b.saturating_sub(a);
    if len == 0 {
        return;
    }
    let overlap = |lo: u64, hi: u64| -> u64 { hi.min(b).saturating_sub(lo.max(a)) };
    match s.kind {
        SpanKind::Put | SpanKind::Get | SpanKind::Amo => {
            // The op queues behind earlier traffic first, then occupies the
            // lanes: the queue portion sits at the start of the span.
            let nic = overlap(s.begin, s.begin.saturating_add(s.queue_ns));
            phase_ns[ReqPhase::NicContention as usize] += nic;
            phase_ns[ReqPhase::Wire as usize] += len - nic;
        }
        SpanKind::Quiet => match flow_queue {
            // Bounded by a known flow: its queue share is contention, the
            // rest of the stall is the wire finishing the transfer.
            Some(q) => {
                let nic = q.min(len);
                phase_ns[ReqPhase::NicContention as usize] += nic;
                phase_ns[ReqPhase::Wire as usize] += len - nic;
            }
            None => {
                // Unpaired: a completion target inside the segment means the
                // wire was still moving bytes; otherwise it was a pure stall.
                if s.remote_end > a {
                    phase_ns[ReqPhase::Wire as usize] += len;
                } else {
                    phase_ns[ReqPhase::Synchronization as usize] += len;
                }
            }
        },
        SpanKind::Barrier | SpanKind::WaitUntil | SpanKind::Collective => {
            phase_ns[ReqPhase::Synchronization as usize] += len;
        }
        SpanKind::Retry | SpanKind::Fault => {
            phase_ns[ReqPhase::FaultDelay as usize] += len;
        }
        SpanKind::Compute => {
            phase_ns[ReqPhase::HandlerCompute as usize] += len;
        }
    }
}

/// Tile `[begin, end)` by walking this request's spans backward from the
/// end, always attributing to the innermost span covering the cursor — the
/// same mechanics as [`crate::critpath::critical_path`]'s per-PE walk,
/// restricted to one request. Gaps (the PE running untraced handler code)
/// are handler-compute.
fn tile_request(
    phase_ns: &mut [u64; 6],
    spans: &[&Span],
    begin: u64,
    end: u64,
    flows: &BTreeMap<(usize, u64), u64>,
) {
    // `spans` is sorted by (begin, id); prefix max of ends finds gaps.
    let mut prefix_max_end = Vec::with_capacity(spans.len());
    let mut running = 0u64;
    for s in spans {
        running = running.max(s.end);
        prefix_max_end.push(running);
    }
    let mut cursor = end;
    while cursor > begin {
        let k = spans.partition_point(|s| s.begin < cursor);
        if k == 0 {
            phase_ns[ReqPhase::HandlerCompute as usize] += cursor - begin;
            break;
        }
        if prefix_max_end[k - 1] < cursor {
            // Nothing covers (cursor-ε): the PE was running handler code.
            let to = prefix_max_end[k - 1].max(begin);
            phase_ns[ReqPhase::HandlerCompute as usize] += cursor - to;
            cursor = to;
            continue;
        }
        // Innermost cover: the latest-beginning span still open at `cursor`.
        let mut i = k - 1;
        while spans[i].end < cursor {
            i -= 1;
        }
        let s = spans[i];
        let seg_begin = s.begin.max(begin);
        let flow_queue = match s.kind {
            SpanKind::Quiet => flows.get(&(s.pe, s.remote_end)).copied(),
            _ => None,
        };
        charge(phase_ns, s, seg_begin, cursor, flow_queue);
        cursor = seg_begin;
    }
}

/// Walk the span graph per request id and emit one [`ReqPathReport`] per
/// request, in the deterministic `(pe, id)` order of `requests`. Every
/// report tiles its latency exactly: `phase_ns` sums to `total_ns()`.
pub fn req_paths(spans: &[Span], requests: &[ReqRecord]) -> Vec<ReqPathReport> {
    // Group the tagged spans by request id once (sorted by (req, begin, id)),
    // and index flows by (pe, completion instant) so paired quiet stalls can
    // be split into contention vs. wire like the global critical path does.
    let mut tagged: Vec<&Span> = spans.iter().filter(|s| s.req != 0).collect();
    tagged.sort_by_key(|s| (s.req, s.begin, s.id));
    let mut groups: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    let mut i = 0usize;
    while i < tagged.len() {
        let req = tagged[i].req;
        let start = i;
        while i < tagged.len() && tagged[i].req == req {
            i += 1;
        }
        groups.insert(req, (start, i));
    }
    let mut flows: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    for s in spans {
        if s.peer.is_some() && s.remote_end > 0 {
            flows.insert((s.pe, s.remote_end), s.queue_ns);
        }
    }
    requests
        .iter()
        .map(|r| {
            let mut phase_ns = [0u64; 6];
            phase_ns[ReqPhase::QueueWait as usize] = r.begin_ns.saturating_sub(r.arrival_ns);
            let begin = r.begin_ns.max(r.arrival_ns);
            let end = r.end_ns.max(begin);
            match groups.get(&r.id) {
                Some(&(lo, hi)) => tile_request(&mut phase_ns, &tagged[lo..hi], begin, end, &flows),
                None => phase_ns[ReqPhase::HandlerCompute as usize] += end - begin,
            }
            ReqPathReport {
                id: r.id,
                pe: r.pe,
                arrival_ns: r.arrival_ns,
                begin_ns: r.begin_ns,
                end_ns: r.end_ns,
                phase_ns,
            }
        })
        .collect()
}

/// One retained worst-case request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    pub id: u64,
    pub pe: usize,
    pub latency_ns: u64,
    /// The phase that dominated this request's latency.
    pub dominant: ReqPhase,
}

/// Deterministic k-worst tail reservoir. Candidates are kept by the total
/// order `(latency desc, mix(seed ^ id), id)`: latency picks the tail, the
/// seeded mix breaks latency ties without favouring low request ids, and the
/// id itself makes the order total. Because the key is a pure function of
/// `(seed, id, latency)`, the retained set is independent of offer order —
/// and therefore of the host worker count.
#[derive(Debug, Clone)]
pub struct TailSampler {
    k: usize,
    seed: u64,
    /// Kept candidates, sorted worst (highest key) first.
    kept: Vec<(u64, u64, Exemplar)>,
}

/// SplitMix64 finalizer — the same integer mix the workloads use for keys.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TailSampler {
    pub fn new(k: usize, seed: u64) -> TailSampler {
        TailSampler { k, seed, kept: Vec::with_capacity(k.min(64)) }
    }

    /// Offer one request; it is retained iff it ranks among the k worst seen.
    pub fn offer(&mut self, e: Exemplar) {
        if self.k == 0 {
            return;
        }
        let key = (e.latency_ns, mix(self.seed ^ e.id));
        let pos = self
            .kept
            .partition_point(|&(lat, tie, ref kept)| (lat, tie, kept.id) > (key.0, key.1, e.id));
        if pos < self.k {
            self.kept.insert(pos, (key.0, key.1, e));
            self.kept.truncate(self.k);
        }
    }

    /// The retained exemplars, worst first.
    pub fn into_exemplars(self) -> Vec<Exemplar> {
        self.kept.into_iter().map(|(_, _, e)| e).collect()
    }
}

/// Phase totals of one SLO window, split by whether the request met the
/// threshold, plus the window's retained exemplars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailProfile {
    /// Window index (`end_ns / window_ns` of the requests completing here).
    pub window: u64,
    pub start_ns: u64,
    /// Requests completing in this window.
    pub count: u64,
    /// Requests above the threshold (the tail).
    pub slow: u64,
    /// Phase totals over the slow requests, [`REQ_PHASES`] order.
    pub slow_phase_ns: [u64; 6],
    /// Phase totals over the requests that met the threshold.
    pub fast_phase_ns: [u64; 6],
    /// The k worst requests of the window, worst first.
    pub exemplars: Vec<Exemplar>,
}

impl TailProfile {
    /// The phase dominating the slow requests' time, or `None` when the
    /// window has no violations. Ties break in [`REQ_PHASES`] order.
    pub fn dominant_cause(&self) -> Option<ReqPhase> {
        if self.slow == 0 {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.slow_phase_ns.iter().enumerate() {
            if v > self.slow_phase_ns[best] {
                best = i;
            }
        }
        Some(REQ_PHASES[best])
    }
}

/// The full tail attribution of a run: one [`TailProfile`] per SLO window
/// that completed at least one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailAttribution {
    pub threshold_ns: u64,
    /// Window width; 0 folds the whole run into a single window 0.
    pub window_ns: u64,
    pub seed: u64,
    /// Exemplars retained per window.
    pub k: usize,
    /// Profiles sorted by window index.
    pub profiles: Vec<TailProfile>,
}

/// Aggregate per-request reports into per-window tail profiles. Requests
/// land in the window containing their *completion* instant — the same
/// convention `MetricsRegistry::observe_windowed` uses, so profiles line up
/// with [`crate::slo`] windows index for index.
pub fn attribute(
    reports: &[ReqPathReport],
    threshold_ns: u64,
    window_ns: u64,
    k: usize,
    seed: u64,
) -> TailAttribution {
    struct Acc {
        count: u64,
        slow: u64,
        slow_phase_ns: [u64; 6],
        fast_phase_ns: [u64; 6],
        sampler: TailSampler,
    }
    let mut windows: BTreeMap<u64, Acc> = BTreeMap::new();
    for r in reports {
        let w = r.end_ns.checked_div(window_ns).unwrap_or(0);
        let acc = windows.entry(w).or_insert_with(|| Acc {
            count: 0,
            slow: 0,
            slow_phase_ns: [0; 6],
            fast_phase_ns: [0; 6],
            sampler: TailSampler::new(k, seed),
        });
        acc.count += 1;
        let latency = r.total_ns();
        let bucket = if latency > threshold_ns {
            acc.slow += 1;
            &mut acc.slow_phase_ns
        } else {
            &mut acc.fast_phase_ns
        };
        for (slot, v) in bucket.iter_mut().zip(r.phase_ns) {
            *slot += v;
        }
        acc.sampler.offer(Exemplar {
            id: r.id,
            pe: r.pe,
            latency_ns: latency,
            dominant: r.dominant_phase(),
        });
    }
    let profiles = windows
        .into_iter()
        .map(|(w, acc)| TailProfile {
            window: w,
            start_ns: w.saturating_mul(window_ns),
            count: acc.count,
            slow: acc.slow,
            slow_phase_ns: acc.slow_phase_ns,
            fast_phase_ns: acc.fast_phase_ns,
            exemplars: acc.sampler.into_exemplars(),
        })
        .collect();
    TailAttribution { threshold_ns, window_ns, seed, k, profiles }
}

impl TailAttribution {
    /// The profile for window index `window`, if any request completed there.
    pub fn profile_at(&self, window: u64) -> Option<&TailProfile> {
        self.profiles.iter().find(|p| p.window == window)
    }

    /// Run-wide slow-request phase totals, largest first — the "top tail
    /// causes" panel.
    pub fn top_causes(&self) -> Vec<(ReqPhase, u64)> {
        let mut totals = [0u64; 6];
        for p in &self.profiles {
            for (slot, v) in totals.iter_mut().zip(p.slow_phase_ns) {
                *slot += v;
            }
        }
        let mut out: Vec<(ReqPhase, u64)> =
            REQ_PHASES.into_iter().zip(totals).filter(|&(_, v)| v > 0).collect();
        out.sort_by_key(|&(p, v)| (std::cmp::Reverse(v), p));
        out
    }

    /// The k worst exemplars across the trailing `span` windows ending at
    /// `window` (inclusive) — what a burn alert at that window's end carries.
    pub fn exemplars_over(&self, window: u64, span: usize) -> Vec<Exemplar> {
        let lo = (window + 1).saturating_sub(span.max(1) as u64);
        let mut sampler = TailSampler::new(self.k, self.seed);
        for p in self.profiles.iter().filter(|p| p.window >= lo && p.window <= window) {
            for &e in &p.exemplars {
                sampler.offer(e);
            }
        }
        sampler.into_exemplars()
    }

    /// Fold this attribution into an evaluated SLO report: every window
    /// gains its `dominant_cause`, and every *raised* burn alert carries the
    /// worst exemplars of the trailing burn span that fired it.
    pub fn annotate(&self, report: &mut SloReport) {
        for w in &mut report.windows {
            w.dominant_cause = self.profile_at(w.window).and_then(|p| p.dominant_cause());
        }
        let window_ns = report.window_ns.max(1);
        let (fast, slow) = (report.spec.fast_windows, report.spec.slow_windows);
        for a in &mut report.alerts {
            if !a.raised {
                continue;
            }
            // `t_ns` is the *end* of the crossing window.
            let crossing = (a.t_ns / window_ns).saturating_sub(1);
            let span = match a.kind {
                crate::slo::BurnWindow::Fast => fast,
                crate::slo::BurnWindow::Slow => slow,
            };
            a.exemplars = self.exemplars_over(crossing, span);
        }
    }

    /// JSON export (stable field order).
    pub fn to_json(&self) -> Json {
        let phase_obj = |phase_ns: &[u64; 6]| {
            Json::Object(
                REQ_PHASES
                    .iter()
                    .zip(phase_ns)
                    .map(|(p, &v)| (p.label().to_string(), Json::uint(v as usize)))
                    .collect(),
            )
        };
        let profiles = self
            .profiles
            .iter()
            .map(|p| {
                let exemplars = p
                    .exemplars
                    .iter()
                    .map(|e| {
                        Json::Object(vec![
                            ("id".to_string(), Json::uint(e.id as usize)),
                            ("pe".to_string(), Json::uint(e.pe)),
                            ("latency_ns".to_string(), Json::uint(e.latency_ns as usize)),
                            ("dominant".to_string(), Json::str(e.dominant.label())),
                        ])
                    })
                    .collect();
                Json::Object(vec![
                    ("window".to_string(), Json::uint(p.window as usize)),
                    ("start_ns".to_string(), Json::uint(p.start_ns as usize)),
                    ("count".to_string(), Json::uint(p.count as usize)),
                    ("slow".to_string(), Json::uint(p.slow as usize)),
                    (
                        "dominant_cause".to_string(),
                        match p.dominant_cause() {
                            Some(c) => Json::str(c.label()),
                            None => Json::Null,
                        },
                    ),
                    ("slow_phase_ns".to_string(), phase_obj(&p.slow_phase_ns)),
                    ("fast_phase_ns".to_string(), phase_obj(&p.fast_phase_ns)),
                    ("exemplars".to_string(), Json::Array(exemplars)),
                ])
            })
            .collect();
        Json::Object(vec![
            ("threshold_ns".to_string(), Json::uint(self.threshold_ns as usize)),
            ("window_ns".to_string(), Json::uint(self.window_ns as usize)),
            ("seed".to_string(), Json::uint(self.seed as usize)),
            ("k".to_string(), Json::uint(self.k)),
            ("profiles".to_string(), Json::Array(profiles)),
        ])
    }

    /// Compact human-readable summary: run-wide top causes, then one line
    /// per violating window.
    pub fn render(&self) -> String {
        let slow_total: u64 = self.profiles.iter().map(|p| p.slow).sum();
        let mut out = format!(
            "tail attribution: {} slow request(s) over {} ns across {} window(s)\n",
            slow_total,
            self.threshold_ns,
            self.profiles.len()
        );
        let causes = self.top_causes();
        let cause_total: u64 = causes.iter().map(|&(_, v)| v).sum::<u64>().max(1);
        for (phase, v) in &causes {
            out.push_str(&format!(
                "  {:>16}: {:>12} ns ({:>3}%)\n",
                phase.label(),
                v,
                v * 100 / cause_total
            ));
        }
        for p in self.profiles.iter().filter(|p| p.slow > 0) {
            let cause = p.dominant_cause().map(|c| c.label()).unwrap_or("-");
            let worst = p
                .exemplars
                .first()
                .map(|e| format!("worst req {:#x} ({} ns)", e.id, e.latency_ns))
                .unwrap_or_default();
            out.push_str(&format!(
                "  window {:>4} @{:>12} ns: {}/{} slow, dominant {} {}\n",
                p.window, p.start_ns, p.slow, p.count, cause, worst
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn op(pe: usize, kind: SpanKind, begin: u64, end: u64, queue: u64, service: u64) -> Span {
        let mut s = Span::op(pe, kind, begin, end, Some(1), 64);
        s.queue_ns = queue;
        s.service_ns = service;
        s
    }

    /// Record a two-request trace on one PE: a fast request that only
    /// computes, and a slow one dominated by a retry.
    fn two_request_trace() -> (Vec<Span>, Vec<ReqRecord>) {
        let t = Tracer::new(true, 2);
        t.begin_request(0, 0x1_0000_0001, 100, 120);
        t.record(op(0, SpanKind::Put, 130, 190, 40, 20));
        t.end_request(0, 200);
        t.begin_request(0, 0x1_0000_0002, 210, 210);
        t.record(op(0, SpanKind::Retry, 220, 900, 0, 0));
        t.end_request(0, 1000);
        (t.drain(), t.drain_requests())
    }

    #[test]
    fn req_paths_tile_latency_exactly() {
        let (spans, reqs) = two_request_trace();
        let reports = req_paths(&spans, &reqs);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            let sum: u64 = r.phase_ns.iter().sum();
            assert_eq!(sum, r.total_ns(), "phases tile the latency exactly: {r:?}");
        }
        let first = &reports[0];
        assert_eq!(first.phase_ns[ReqPhase::QueueWait as usize], 20);
        assert_eq!(first.phase_ns[ReqPhase::NicContention as usize], 40);
        assert_eq!(first.phase_ns[ReqPhase::Wire as usize], 20);
        // Gaps inside the service window are handler compute.
        assert_eq!(first.phase_ns[ReqPhase::HandlerCompute as usize], 20);
        let second = &reports[1];
        assert_eq!(second.phase_ns[ReqPhase::FaultDelay as usize], 680);
        assert_eq!(second.dominant_phase(), ReqPhase::FaultDelay);
    }

    #[test]
    fn quiet_pairs_with_its_flow() {
        let t = Tracer::new(true, 1);
        t.begin_request(0, 0x1_0000_0001, 0, 0);
        let mut put = op(0, SpanKind::Put, 0, 50, 10, 40);
        put.remote_end = 300;
        t.record(put);
        let mut quiet = op(0, SpanKind::Quiet, 50, 300, 0, 0);
        quiet.peer = None;
        quiet.remote_end = 300; // completion target: the put's landing
        t.record(quiet);
        t.end_request(0, 300);
        let reports = req_paths(&t.drain(), &t.drain_requests());
        let r = &reports[0];
        // The quiet's 250 ns stall splits per the put's queue share (10 ns).
        assert_eq!(r.phase_ns[ReqPhase::NicContention as usize], 10 + 10);
        assert_eq!(r.phase_ns[ReqPhase::Wire as usize], 40 + 240);
        assert_eq!(r.phase_ns.iter().sum::<u64>(), r.total_ns());
    }

    #[test]
    fn requests_without_spans_are_handler_compute() {
        let t = Tracer::new(true, 1);
        t.begin_request(0, 7, 50, 80);
        t.end_request(0, 180);
        let reports = req_paths(&[], &t.drain_requests());
        assert_eq!(reports[0].phase_ns[ReqPhase::QueueWait as usize], 30);
        assert_eq!(reports[0].phase_ns[ReqPhase::HandlerCompute as usize], 100);
    }

    #[test]
    fn attribute_splits_windows_and_picks_dominant_cause() {
        let (spans, reqs) = two_request_trace();
        let reports = req_paths(&spans, &reqs);
        // Threshold 500: request 1 (latency 100) is fast, request 2
        // (latency 790) is slow. Window width 500: completions at 200 and
        // 1000 land in windows 0 and 2.
        let tail = attribute(&reports, 500, 500, 3, 42);
        assert_eq!(tail.profiles.len(), 2);
        let w0 = tail.profile_at(0).unwrap();
        assert_eq!((w0.count, w0.slow), (1, 0));
        assert_eq!(w0.dominant_cause(), None);
        assert_eq!(w0.exemplars.len(), 1, "fast requests are still exemplar candidates");
        let w2 = tail.profile_at(2).unwrap();
        assert_eq!((w2.count, w2.slow), (1, 1));
        assert_eq!(w2.dominant_cause(), Some(ReqPhase::FaultDelay));
        assert_eq!(w2.exemplars[0].id, 0x1_0000_0002);
        assert_eq!(tail.top_causes()[0].0, ReqPhase::FaultDelay);
        let parsed = crate::json::parse(&tail.to_json().pretty()).expect("tail json parses");
        assert_eq!(parsed.get("threshold_ns").and_then(|v| v.as_i64()), Some(500));
        assert!(tail.render().contains("fault_delay"));
    }

    #[test]
    fn sampler_keeps_k_worst_independent_of_offer_order() {
        let exemplar = |id: u64, latency: u64| Exemplar {
            id,
            pe: 0,
            latency_ns: latency,
            dominant: ReqPhase::HandlerCompute,
        };
        let offers: Vec<Exemplar> =
            (0..100).map(|i| exemplar(i, 1000 + (i * 37) % 50)).collect();
        let run = |order: &[Exemplar]| {
            let mut s = TailSampler::new(5, 0xC0FFEE);
            for &e in order {
                s.offer(e);
            }
            s.into_exemplars()
        };
        let forward = run(&offers);
        let mut reversed = offers.clone();
        reversed.reverse();
        assert_eq!(forward, run(&reversed), "retained set is offer-order independent");
        assert_eq!(forward.len(), 5);
        assert!(forward.windows(2).all(|w| w[0].latency_ns >= w[1].latency_ns));
        // A different seed may retain a different tie-broken set, but stays
        // internally deterministic.
        let mut other = TailSampler::new(5, 1);
        for &e in &offers {
            other.offer(e);
        }
        let other = other.into_exemplars();
        let mut again = TailSampler::new(5, 1);
        for &e in offers.iter().rev() {
            again.offer(e);
        }
        assert_eq!(other, again.into_exemplars());
    }

    #[test]
    fn annotate_fills_windows_and_alert_exemplars() {
        use crate::metrics::MetricsRegistry;
        use crate::slo::SloSpec;
        use crate::stats::StatsSnapshot;
        // Build a matching metric series and request trace: window 3 is an
        // outage — every request slow, dominated by retries.
        let reg = MetricsRegistry::new_windowed(true, 1, 1000);
        let t = Tracer::new(true, 1);
        let mut seq = 0u64;
        for w in 0..6u64 {
            for i in 0..20u64 {
                seq += 1;
                let id = (1u64 << 32) | seq;
                let end = w * 1000 + i * 25 + 500;
                let (arrival, begin) = if w == 3 {
                    (end - 3000, end - 2500) // slow: 500 ns queued + 2500 serving
                } else {
                    (end - 400, end - 390)
                };
                t.begin_request(0, id, arrival, begin);
                if w == 3 {
                    t.record(op(0, SpanKind::Retry, begin, end, 0, 0));
                }
                t.end_request(0, end);
                reg.observe_windowed(0, "serve_latency_ns", None, end, end - arrival);
            }
        }
        let spec = SloSpec::new("p99", "serve_latency_ns", 1000, 0.99)
            .with_burn_windows(2, 4)
            .with_burn_alerts(10.0, 2.0);
        let mut report = spec.evaluate(&reg.snapshot(StatsSnapshot::default()));
        let reports = req_paths(&t.drain(), &t.drain_requests());
        let tail = attribute(&reports, 1000, 1000, 4, 0x5E21);
        tail.annotate(&mut report);
        assert_eq!(report.windows[3].dominant_cause, Some(ReqPhase::FaultDelay));
        assert!(report.windows.iter().filter(|w| w.violations == 0).all(|w| w
            .dominant_cause
            .is_none()));
        let raised: Vec<_> = report.alerts.iter().filter(|a| a.raised).collect();
        assert!(!raised.is_empty());
        for a in &raised {
            assert_eq!(a.exemplars.len(), 4, "raised alerts carry the k worst requests");
            assert!(a.exemplars[0].latency_ns >= 3000, "the worst request leads");
        }
        assert!(report.alerts.iter().filter(|a| !a.raised).all(|a| a.exemplars.is_empty()));
        // Annotation is idempotent and deterministic.
        let mut again = spec.evaluate(&reg.snapshot(StatsSnapshot::default()));
        tail.annotate(&mut again);
        assert_eq!(report, again);
    }
}
