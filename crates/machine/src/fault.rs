//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes everything that can go wrong in a run: transient
//! message loss and corruption on the wire, timed NIC-degradation windows
//! (bandwidth cut over a virtual-time interval), and scheduled PE failures.
//! All randomness comes from per-PE xoshiro streams derived from the plan
//! seed, and every fault decision is drawn by the *issuing* PE in its own
//! program order — so the same seed and plan yield the same faults no matter
//! how the OS schedules the PE threads.
//!
//! The plan is pay-for-what-you-use: a machine without a plan (or with a
//! zero plan) carries no fault state at all, and every code path that
//! consults it is a single `Option` check.
//!
//! Failure model notes:
//! - *Drop*: the message never arrives; the sender detects this by timeout
//!   and retries. Charged as issuer-side virtual time only (no NIC
//!   occupancy — the model treats a lost message as lost at injection).
//! - *Corrupt*: the message arrives damaged and is rejected by the receiver
//!   (think link-level CRC); the effect on the sender is the same
//!   detect-and-retry cycle, but the two are counted separately. Data that
//!   eventually lands is always intact — we model detection, not silent
//!   corruption.
//! - *PE failure*: the PE is marked dead once its virtual clock reaches the
//!   scheduled instant. Dead PEs stop participating in barriers, and layers
//!   above map death onto Fortran 2018 `STAT_FAILED_IMAGE` semantics.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// A bandwidth cut on one node's NIC over a virtual-time interval:
/// reservations that begin inside `[begin_ns, end_ns)` see their occupancy
/// divided by `bandwidth_factor` (e.g. `0.5` halves the effective bandwidth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedWindow {
    pub node: usize,
    pub begin_ns: u64,
    pub end_ns: u64,
    /// Fraction of nominal bandwidth available, in `(0, 1]`.
    pub bandwidth_factor: f64,
}

/// A scheduled PE death: `pe` is marked failed once its virtual clock
/// reaches `at_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeFailure {
    pub pe: usize,
    pub at_ns: u64,
}

/// Retry discipline the conduit applies when an injected fault hits an
/// operation: exponential backoff with deterministic jitter, capped attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Give up (surface a `ConduitError`) after this many attempts.
    pub max_attempts: u32,
    /// Loss-detection timeout charged for the first failed attempt, ns.
    pub base_timeout_ns: f64,
    /// Ceiling on the per-attempt backoff delay, ns.
    pub max_backoff_ns: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 8, base_timeout_ns: 2_000.0, max_backoff_ns: 262_144.0 }
    }
}

/// A complete, seeded fault schedule for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-PE fault streams.
    pub seed: u64,
    /// Per-message-attempt probability of a transient drop, `[0, 1)`.
    pub drop_prob: f64,
    /// Per-message-attempt probability of detected corruption, `[0, 1)`.
    pub corrupt_prob: f64,
    /// Timed NIC bandwidth cuts.
    pub degraded: Vec<DegradedWindow>,
    /// Scheduled PE deaths.
    pub pe_failures: Vec<PeFailure>,
    /// Retry discipline for transient faults.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// A plan that injects nothing (useful to explicitly override an
    /// environment-selected plan: explicit config always wins).
    pub fn none() -> FaultPlan {
        FaultPlan::new(0)
    }

    /// An empty plan with the given seed; add faults with the builders.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            degraded: Vec::new(),
            pe_failures: Vec::new(),
            retry: RetryPolicy::default(),
        }
    }

    /// Canned plan: transient drops at rate `p`, nothing else.
    pub fn transient_drops(seed: u64, p: f64) -> FaultPlan {
        FaultPlan::new(seed).with_drop_prob(p)
    }

    pub fn with_drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    pub fn with_corrupt_prob(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    pub fn with_degraded_window(mut self, w: DegradedWindow) -> Self {
        self.degraded.push(w);
        self
    }

    pub fn with_pe_failure(mut self, pe: usize, at_ns: u64) -> Self {
        self.pe_failures.push(PeFailure { pe, at_ns });
        self
    }

    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Does this plan inject anything at all? A zero plan builds no fault
    /// state — bit-identical to running with no plan.
    pub fn is_zero(&self) -> bool {
        self.drop_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.degraded.is_empty()
            && self.pe_failures.is_empty()
    }

    /// Parse a canned plan name (the `PGAS_FAULT_PLAN` values). Trimmed,
    /// case-insensitive. `None` for unknown names.
    ///
    /// - `off` / `none`: the zero plan
    /// - `drop1`: 1% transient drops
    /// - `drop5`: 5% transient drops
    /// - `flaky`: 1% drops + 0.5% detected corruption
    pub fn parse(s: &str) -> Option<FaultPlan> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(FaultPlan::none()),
            "drop1" => Some(FaultPlan::transient_drops(0xFA01, 0.01)),
            "drop5" => Some(FaultPlan::transient_drops(0xFA05, 0.05)),
            "flaky" => Some(FaultPlan::transient_drops(0xF1A, 0.01).with_corrupt_prob(0.005)),
            _ => None,
        }
    }

    /// Validate against a machine shape.
    pub fn validate(&self, total_pes: usize, nodes: usize) -> Result<(), String> {
        for (name, p) in [("drop_prob", self.drop_prob), ("corrupt_prob", self.corrupt_prob)] {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("fault plan {name} must be in [0, 1), got {p}"));
            }
        }
        if self.drop_prob + self.corrupt_prob >= 1.0 {
            return Err("combined fault probability must stay below 1".into());
        }
        for w in &self.degraded {
            if w.node >= nodes {
                return Err(format!("degraded window names node {} of {nodes}", w.node));
            }
            if !(w.bandwidth_factor > 0.0 && w.bandwidth_factor <= 1.0) {
                return Err(format!(
                    "degraded window bandwidth_factor must be in (0, 1], got {}",
                    w.bandwidth_factor
                ));
            }
            if w.begin_ns >= w.end_ns {
                return Err("degraded window must have begin_ns < end_ns".into());
            }
        }
        for f in &self.pe_failures {
            if f.pe >= total_pes {
                return Err(format!("pe failure names PE {} of {total_pes}", f.pe));
            }
        }
        if self.retry.max_attempts == 0 {
            return Err("retry policy needs at least one attempt".into());
        }
        if !self.retry.base_timeout_ns.is_finite() || self.retry.base_timeout_ns <= 0.0 {
            return Err("retry base_timeout_ns must be positive".into());
        }
        Ok(())
    }
}

/// What an injected transient fault did to a message attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The message was lost in flight (sender times out).
    Drop,
    /// The message arrived damaged and was rejected (sender retries).
    Corrupt,
}

impl FaultKind {
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

// ---- process-wide default (PGAS_FAULT_PLAN) --------------------------------

/// The environment-selected default plan, read once per process (so parallel
/// test threads all see the same answer). Mirrors `PGAS_SANITIZER`.
pub(crate) fn env_default() -> Option<FaultPlan> {
    static DEFAULT: OnceLock<Option<FaultPlan>> = OnceLock::new();
    DEFAULT
        .get_or_init(|| std::env::var("PGAS_FAULT_PLAN").ok().as_deref().and_then(FaultPlan::parse))
        .clone()
}

// ---- thread-scoped override -------------------------------------------------

thread_local! {
    static FORCED_PLAN: RefCell<Option<FaultPlan>> = const { RefCell::new(None) };
}

/// Run `f` with every machine *built on this thread* using `plan`, beating
/// both explicit config and the `PGAS_FAULT_PLAN` environment default.
/// Mirrors [`crate::sanitizer::with_forced_mode`]; the main use is injecting
/// a plan into app harnesses that build their own `MachineConfig`.
pub fn with_forced_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<FaultPlan>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_PLAN.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = FORCED_PLAN.with(|c| c.borrow_mut().replace(plan));
    let _restore = Restore(prev);
    f()
}

/// The plan forced on this thread, if any.
pub(crate) fn forced_plan() -> Option<FaultPlan> {
    FORCED_PLAN.with(|c| c.borrow().clone())
}

// ---- runtime state ----------------------------------------------------------

/// Live fault state carried by a machine whose resolved plan is non-zero.
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Per-PE deterministic streams. Only the owning PE's thread draws from
    /// stream `pe`, so the mutexes are uncontended; they exist to keep the
    /// state `Sync`.
    rngs: Vec<Mutex<SmallRng>>,
    failed: Vec<AtomicBool>,
    /// Scheduled death instant per PE (`u64::MAX` = never).
    deadline: Vec<u64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, n_pes: usize) -> FaultState {
        let mut deadline = vec![u64::MAX; n_pes];
        for f in &plan.pe_failures {
            deadline[f.pe] = deadline[f.pe].min(f.at_ns);
        }
        FaultState {
            rngs: (0..n_pes)
                .map(|pe| {
                    // Decorrelate per-PE streams from one shared seed.
                    let mut mix = plan.seed ^ (pe as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    mix ^= mix >> 33;
                    Mutex::new(SmallRng::seed_from_u64(mix))
                })
                .collect(),
            failed: (0..n_pes).map(|_| AtomicBool::new(false)).collect(),
            deadline,
            plan,
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Roll one message attempt by `pe`. One draw per attempt keeps the
    /// stream position a pure function of the PE's op sequence.
    pub(crate) fn draw(&self, pe: usize) -> Option<FaultKind> {
        let p = self.plan.drop_prob + self.plan.corrupt_prob;
        if p == 0.0 {
            return None;
        }
        let u: f64 = self.rngs[pe].lock().unwrap().gen();
        if u < self.plan.drop_prob {
            Some(FaultKind::Drop)
        } else if u < p {
            Some(FaultKind::Corrupt)
        } else {
            None
        }
    }

    /// Backoff delay for retry number `attempt` (1-based): exponential in
    /// the attempt index, deterministic jitter from the PE's stream, capped.
    pub(crate) fn backoff_ns(&self, pe: usize, attempt: u32) -> u64 {
        let base = self.plan.retry.base_timeout_ns;
        let exp = base * (1u64 << (attempt - 1).min(20)) as f64;
        let capped = exp.min(self.plan.retry.max_backoff_ns);
        let jitter: f64 = self.rngs[pe].lock().unwrap().gen_range(0.0..0.5);
        (capped * (1.0 + jitter)).round() as u64
    }

    /// Bandwidth factor for a reservation on `node` beginning at `t_ns`
    /// (1.0 when no window applies).
    pub(crate) fn bandwidth_factor(&self, node: usize, t_ns: u64) -> f64 {
        let mut f = 1.0f64;
        for w in &self.plan.degraded {
            if w.node == node && (w.begin_ns..w.end_ns).contains(&t_ns) {
                f = f.min(w.bandwidth_factor);
            }
        }
        f
    }

    pub(crate) fn deadline(&self, pe: usize) -> u64 {
        self.deadline[pe]
    }

    pub(crate) fn is_failed(&self, pe: usize) -> bool {
        self.failed[pe].load(Ordering::Acquire)
    }

    /// Mark `pe` dead; true only for the first caller.
    pub(crate) fn mark_failed(&self, pe: usize) -> bool {
        !self.failed[pe].swap(true, Ordering::AcqRel)
    }

    pub(crate) fn failed_list(&self) -> Vec<usize> {
        (0..self.failed.len()).filter(|&p| self.is_failed(p)).collect()
    }

    pub(crate) fn any_failed(&self) -> bool {
        self.failed.iter().any(|f| f.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_zero() {
        assert!(FaultPlan::none().is_zero());
        assert!(FaultPlan::new(42).is_zero());
        assert!(!FaultPlan::transient_drops(1, 0.01).is_zero());
        assert!(!FaultPlan::new(1).with_pe_failure(0, 100).is_zero());
        assert!(!FaultPlan::new(1)
            .with_degraded_window(DegradedWindow {
                node: 0,
                begin_ns: 0,
                end_ns: 10,
                bandwidth_factor: 0.5
            })
            .is_zero());
    }

    #[test]
    fn canned_names_parse() {
        assert!(FaultPlan::parse("off").unwrap().is_zero());
        assert!(FaultPlan::parse(" None\n").unwrap().is_zero());
        assert_eq!(FaultPlan::parse("drop1").unwrap().drop_prob, 0.01);
        assert_eq!(FaultPlan::parse("DROP5").unwrap().drop_prob, 0.05);
        let flaky = FaultPlan::parse("flaky").unwrap();
        assert_eq!(flaky.corrupt_prob, 0.005);
        assert!(FaultPlan::parse("chaos-monkey").is_none());
        assert!(FaultPlan::parse("").is_none());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::transient_drops(1, 1.5).validate(4, 1).is_err());
        assert!(FaultPlan::new(1).with_pe_failure(9, 5).validate(4, 1).is_err());
        assert!(FaultPlan::new(1)
            .with_degraded_window(DegradedWindow {
                node: 3,
                begin_ns: 0,
                end_ns: 1,
                bandwidth_factor: 0.5
            })
            .validate(4, 1)
            .is_err());
        assert!(FaultPlan::new(1)
            .with_degraded_window(DegradedWindow {
                node: 0,
                begin_ns: 5,
                end_ns: 5,
                bandwidth_factor: 0.5
            })
            .validate(4, 1)
            .is_err());
        let mut p = FaultPlan::transient_drops(1, 0.01);
        p.retry.max_attempts = 0;
        assert!(p.validate(4, 1).is_err());
        assert!(FaultPlan::parse("flaky").unwrap().validate(4, 2).is_ok());
    }

    #[test]
    fn draws_are_deterministic_per_seed_and_pe() {
        let a = FaultState::new(FaultPlan::transient_drops(7, 0.3), 4);
        let b = FaultState::new(FaultPlan::transient_drops(7, 0.3), 4);
        for pe in 0..4 {
            for _ in 0..256 {
                assert_eq!(a.draw(pe), b.draw(pe));
            }
        }
        // Different PEs see decorrelated streams.
        let c = FaultState::new(FaultPlan::transient_drops(7, 0.3), 2);
        let seq0: Vec<_> = (0..64).map(|_| c.draw(0).is_some()).collect();
        let seq1: Vec<_> = (0..64).map(|_| c.draw(1).is_some()).collect();
        assert_ne!(seq0, seq1);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let fs = FaultState::new(FaultPlan::transient_drops(3, 0.5), 1);
        let d1 = fs.backoff_ns(0, 1);
        let d5 = fs.backoff_ns(0, 5);
        assert!(d1 >= 2_000, "first delay includes the base timeout: {d1}");
        assert!(d5 > d1, "backoff grows: {d5} vs {d1}");
        // Far beyond the cap the delay saturates at max_backoff * 1.5.
        let d30 = fs.backoff_ns(0, 30);
        assert!(d30 as f64 <= 262_144.0 * 1.5 + 1.0, "capped: {d30}");
    }

    #[test]
    fn degradation_windows_select_by_node_and_time() {
        let plan = FaultPlan::new(1).with_degraded_window(DegradedWindow {
            node: 1,
            begin_ns: 100,
            end_ns: 200,
            bandwidth_factor: 0.25,
        });
        let fs = FaultState::new(plan, 4);
        assert_eq!(fs.bandwidth_factor(0, 150), 1.0);
        assert_eq!(fs.bandwidth_factor(1, 99), 1.0);
        assert_eq!(fs.bandwidth_factor(1, 100), 0.25);
        assert_eq!(fs.bandwidth_factor(1, 199), 0.25);
        assert_eq!(fs.bandwidth_factor(1, 200), 1.0);
    }

    #[test]
    fn failure_marking_is_once() {
        let fs = FaultState::new(FaultPlan::new(1).with_pe_failure(2, 500), 4);
        assert_eq!(fs.deadline(2), 500);
        assert_eq!(fs.deadline(0), u64::MAX);
        assert!(!fs.is_failed(2));
        assert!(fs.mark_failed(2));
        assert!(!fs.mark_failed(2), "second mark is a no-op");
        assert!(fs.is_failed(2));
        assert_eq!(fs.failed_list(), vec![2]);
        assert!(fs.any_failed());
    }
}
