//! Rendezvous primitives that combine *real* thread synchronization with
//! *virtual* clock agreement.
//!
//! A machine barrier does two jobs at once: it blocks the participating OS
//! threads until all have arrived (real synchronization, so programs are
//! actually correct), and it advances every participant's virtual clock to
//! `max(arrival clocks) + cost`, where the cost is supplied by the caller
//! (the communication layer knows what a dissemination barrier costs on its
//! conduit).
//!
//! All waits are poison-aware: if any PE thread panics, the launcher poisons
//! the machine and every blocked wait panics out instead of hanging.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Relaxed polling period for waiters that are *target-notified* when they
/// become actionable — non-minimum keys in the NIC arbiter's parking lot and
/// in the worker pool's ready queue. Those threads are woken by name exactly
/// when they become the minimum (notification happens under the same mutex
/// their wait holds, so it cannot be lost); the timeout is a pure
/// missed-wake backstop and can be lazy without adding latency to the
/// handoff path. At thousands of parked PEs this is what keeps the
/// wall-clock poll storm (waiters/tick) sublinear in simulation size.
pub(crate) const WAIT_TICK_IDLE: Duration = Duration::from_millis(200);

/// Eager polling period for the *designated minimum* waiter in the NIC
/// arbiter and the worker-pool ready queue. Wakes toward the minimum are
/// sent lock-free from hot paths (every clock advance), so one can land in
/// the window between the minimum's predicate check and its re-park and be
/// lost; the minimum's own poll is what repairs that, and it bounds the
/// whole grant/admission chain's per-step stall. Exactly one thread per
/// queue polls at this rate, so the eager tick adds no storm.
pub(crate) const WAIT_TICK_MIN: Duration = Duration::from_millis(1);

/// Shared poison flag: set when any PE panics.
#[derive(Debug, Default)]
pub struct Poison {
    flag: AtomicBool,
}

impl Poison {
    pub fn poison(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_poisoned(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Panic (propagating simulation shutdown) if poisoned.
    pub fn check(&self) {
        if self.is_poisoned() {
            panic!("simulation poisoned: another PE panicked");
        }
    }
}

#[derive(Debug)]
struct BarrierInner {
    count: usize,
    generation: u64,
    max_clock: u64,
    /// `max_clock` of the round that most recently completed.
    result: u64,
    /// Arrivals needed to complete a round. Starts at the group size and
    /// shrinks when a member permanently departs (PE failure).
    expected: usize,
}

/// A reusable clock-combining barrier for a fixed group size.
///
/// Members can permanently [`ClockBarrier::leave`] the group (scheduled PE
/// failures do); the remaining members then complete rounds among themselves
/// instead of hanging.
#[derive(Debug)]
pub struct ClockBarrier {
    inner: Mutex<BarrierInner>,
    cv: Condvar,
    n: usize,
}

impl ClockBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier group must be non-empty");
        ClockBarrier {
            inner: Mutex::new(BarrierInner {
                count: 0,
                generation: 0,
                max_clock: 0,
                result: 0,
                expected: n,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    /// Number of participants at construction (departures not subtracted).
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Complete the current round: publish the combined clock and wake the
    /// waiters. Caller holds the lock and has checked `count == expected`.
    fn finish_round(&self, inner: &mut BarrierInner) -> u64 {
        let result = inner.max_clock;
        inner.result = result;
        inner.count = 0;
        inner.max_clock = 0;
        inner.generation = inner.generation.wrapping_add(1);
        self.cv.notify_all();
        result
    }

    /// Arrive with the caller's current virtual clock; returns the maximum
    /// clock across the group for this round.
    pub fn arrive(&self, my_clock: u64, poison: &Poison) -> u64 {
        self.arrive_with(my_clock, poison, || {})
    }

    /// Like [`Self::arrive`], but the arrival that completes the round runs
    /// `on_release` *while still holding the barrier lock, before waking the
    /// waiters*. The NIC arbiter uses this to clear every participant's
    /// quiescent flag atomically with the release: if each waiter cleared its
    /// own flag after waking, a still-unscheduled waiter would look quiescent
    /// to the arbiter while logically already released, and an out-of-order
    /// reservation could be granted. (Rounds completed by [`Self::leave`]
    /// skip the hook — PE failure already forfeits strict ordering.)
    pub fn arrive_with(&self, my_clock: u64, poison: &Poison, on_release: impl FnOnce()) -> u64 {
        let mut inner = self.inner.lock();
        inner.max_clock = inner.max_clock.max(my_clock);
        inner.count += 1;
        debug_assert!(inner.count <= inner.expected, "more arrivals than live members");
        if inner.count == inner.expected {
            on_release();
            self.finish_round(&mut inner)
        } else {
            let gen = inner.generation;
            while inner.generation == gen {
                poison.check();
                self.cv.wait_for(&mut inner, WAIT_TICK_IDLE);
            }
            inner.result
        }
    }

    /// Permanently remove one member (a failed PE) from the group. If the
    /// remaining members have all already arrived, the pending round
    /// completes immediately instead of waiting for the dead member.
    pub fn leave(&self) {
        let mut inner = self.inner.lock();
        assert!(inner.expected > 0, "leave() on an empty barrier group");
        inner.expected -= 1;
        if inner.count > 0 && inner.count == inner.expected {
            self.finish_round(&mut inner);
        }
    }

    /// Wake all waiters so they observe poison. Called by the launcher on
    /// failure.
    pub fn interrupt(&self) {
        self.cv.notify_all();
    }
}

/// Per-PE notification cell used by `wait_until`-style operations: remote
/// writers bump the generation after touching a PE's heap; waiters re-check
/// their predicate on every bump (or timeout tick).
#[derive(Debug, Default)]
pub struct NotifyCell {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl NotifyCell {
    /// Signal that the associated PE's memory may have changed.
    pub fn notify(&self) {
        let mut g = self.gen.lock();
        *g = g.wrapping_add(1);
        self.cv.notify_all();
    }

    /// Block until `pred()` is true. The predicate is evaluated under no
    /// lock; the generation counter only bounds how long we sleep between
    /// re-checks.
    pub fn wait_until(&self, poison: &Poison, mut pred: impl FnMut() -> bool) {
        loop {
            if pred() {
                return;
            }
            poison.check();
            let mut g = self.gen.lock();
            let seen = *g;
            // Re-check with the lock held so a notify between our check and
            // our sleep is not lost.
            if pred() {
                return;
            }
            if *g == seen {
                self.cv.wait_for(&mut g, WAIT_TICK_IDLE);
            }
        }
    }

    /// Run `f` (a write that this cell's waiters observe through their
    /// predicates) under the generation lock, then wake the waiters.
    ///
    /// With [`Self::wait_until_guarded`] on the waiting side, this makes the
    /// write and its visibility one critical section: a waiter can only see
    /// the write's effects *after* everything `f` did — including, for the
    /// NIC arbiter, clearing the waiter's quiescent flag — and conversely a
    /// waiter that declared itself asleep before `f` ran is woken. Without
    /// this pairing a deterministic machine has a wake-latency hole: the
    /// write lands, the waiter is still flagged quiescent, and an arbiter
    /// grant check in that window orders reservations differently than a run
    /// where the waiter woke first.
    pub fn notify_applying<R>(&self, f: impl FnOnce() -> R) -> R {
        let mut g = self.gen.lock();
        let out = f();
        *g = g.wrapping_add(1);
        self.cv.notify_all();
        out
    }

    /// [`Self::wait_until`] with hooks run under the generation lock:
    /// `on_sleep` immediately before every sleep (assert quiescence) and
    /// `on_exit` before returning (withdraw it). Predicates are only checked
    /// under the lock, so a [`Self::notify_applying`] writer's effects and
    /// its hook are observed atomically.
    pub fn wait_until_guarded(
        &self,
        poison: &Poison,
        mut pred: impl FnMut() -> bool,
        mut on_sleep: impl FnMut(),
        on_exit: impl FnOnce(),
    ) {
        let mut g = self.gen.lock();
        loop {
            if pred() {
                on_exit();
                return;
            }
            if poison.is_poisoned() {
                on_exit();
                drop(g);
                poison.check();
                unreachable!("poison.check() panics when poisoned");
            }
            on_sleep();
            self.cv.wait_for(&mut g, WAIT_TICK_IDLE);
        }
    }

    /// Wake all waiters (used on poison).
    pub fn interrupt(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn barrier_returns_max_clock() {
        let b = Arc::new(ClockBarrier::new(4));
        let poison = Arc::new(Poison::default());
        let mut handles = Vec::new();
        for (i, clock) in [10u64, 500, 30, 40].iter().enumerate() {
            let b = b.clone();
            let p = poison.clone();
            let clock = *clock;
            handles.push(std::thread::spawn(move || {
                // Stagger arrivals a little.
                std::thread::sleep(Duration::from_millis(5 * i as u64));
                b.arrive(clock, &p)
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 500);
        }
    }

    #[test]
    fn barrier_rounds_are_independent() {
        let b = Arc::new(ClockBarrier::new(2));
        let poison = Arc::new(Poison::default());
        let b2 = b.clone();
        let p2 = poison.clone();
        let t = std::thread::spawn(move || {
            let r1 = b2.arrive(100, &p2);
            let r2 = b2.arrive(r1 + 1, &p2);
            (r1, r2)
        });
        let r1 = b.arrive(50, &poison);
        let r2 = b.arrive(700, &poison);
        assert_eq!(r1, 100);
        assert_eq!(r2, 700);
        assert_eq!(t.join().unwrap(), (100, 700));
    }

    #[test]
    fn poisoned_barrier_does_not_hang() {
        let b = Arc::new(ClockBarrier::new(2));
        let poison = Arc::new(Poison::default());
        let b2 = b.clone();
        let p2 = poison.clone();
        let t = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                b2.arrive(0, &p2);
            }));
            r.is_err()
        });
        std::thread::sleep(Duration::from_millis(30));
        poison.poison();
        b.interrupt();
        assert!(t.join().unwrap(), "waiter should have panicked out of the barrier");
    }

    #[test]
    fn leave_completes_a_pending_round() {
        // Two of three arrive, then the third departs instead of arriving:
        // the waiters must complete the round among themselves.
        let b = Arc::new(ClockBarrier::new(3));
        let poison = Arc::new(Poison::default());
        let mut handles = Vec::new();
        for clock in [100u64, 250] {
            let b = b.clone();
            let p = poison.clone();
            handles.push(std::thread::spawn(move || b.arrive(clock, &p)));
        }
        std::thread::sleep(Duration::from_millis(20));
        b.leave();
        for h in handles {
            assert_eq!(h.join().unwrap(), 250);
        }
        // Subsequent rounds need only the two remaining members.
        let b2 = b.clone();
        let p2 = poison.clone();
        let t = std::thread::spawn(move || b2.arrive(7, &p2));
        assert_eq!(b.arrive(9, &poison), 9);
        assert_eq!(t.join().unwrap(), 9);
    }

    #[test]
    fn leave_before_any_arrival_shrinks_future_rounds() {
        let b = ClockBarrier::new(2);
        let poison = Poison::default();
        b.leave();
        // A solo arrival now completes instantly.
        assert_eq!(b.arrive(42, &poison), 42);
    }

    #[test]
    fn notify_cell_wakes_waiter() {
        let cell = Arc::new(NotifyCell::default());
        let flag = Arc::new(AtomicU64::new(0));
        let poison = Arc::new(Poison::default());
        let (c2, f2, p2) = (cell.clone(), flag.clone(), poison.clone());
        let t = std::thread::spawn(move || {
            c2.wait_until(&p2, || f2.load(Ordering::Acquire) == 7);
        });
        std::thread::sleep(Duration::from_millis(10));
        flag.store(7, Ordering::Release);
        cell.notify();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_with_true_predicate_returns_immediately() {
        let cell = NotifyCell::default();
        let poison = Poison::default();
        cell.wait_until(&poison, || true);
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn wait_until_panics_when_poisoned() {
        let cell = NotifyCell::default();
        let poison = Poison::default();
        poison.poison();
        cell.wait_until(&poison, || false);
    }
}
