//! # pgas-machine — a simulated multi-node PGAS cluster
//!
//! This crate is the hardware substrate for the CAF-over-OpenSHMEM
//! reproduction. It stands in for the physical clusters used in the paper
//! (Stampede, Titan, Cray XC30): processing elements (PEs) are OS threads,
//! each node has a NIC that is a shared, serializing resource, and every PE
//! carries a **virtual clock** measured in nanoseconds.
//!
//! Two things happen on every remote operation:
//!
//! 1. **Real data movement** — bytes are copied into the target PE's heap
//!    through per-word atomics, so all synchronization built on top (locks,
//!    barriers, events) is exercised for real.
//! 2. **Virtual timing** — the operation's cost is charged to the issuing
//!    PE's clock and to the NICs it crosses, so latency, bandwidth and
//!    contention emerge from a LogGP-style model instead of wall time.
//!
//! Causality is propagated Lamport-style: every 8-byte word of every heap
//! carries a shadow timestamp holding the virtual completion time of the last
//! remote write, and reads/waits advance the reader's clock past it. This is
//! what makes, e.g., MCS lock handoff latency an *emergent* quantity.
//!
//! The crate deliberately knows nothing about OpenSHMEM or CAF; it exposes
//! heaps, clocks, NICs, barriers and a SPMD launcher. Communication-library
//! semantics live in `pgas-conduit` and above.

pub mod aggregate;
pub mod config;
pub mod critdiff;
pub mod critpath;
pub mod fault;
pub mod heap;
pub mod integrity;
pub mod json;
pub mod launch;
pub mod machine;
pub mod metrics;
pub mod nic;
pub mod platforms;
pub mod sanitizer;
pub mod sched;
pub mod slo;
pub mod stats;
pub mod stream;
pub mod sync;
pub mod tailprof;
pub mod trace;

pub use aggregate::with_forced_aggregation;
pub use config::{ComputeParams, LinkParams, MachineConfig, WireParams};
pub use critdiff::{digest_metrics, CritDiff, MetricDigest, RunDigest};
pub use critpath::{critical_path, CriticalPathReport, PathCategory, PathSegment};
pub use fault::{with_forced_plan, DegradedWindow, FaultKind, FaultPlan, PeFailure, RetryPolicy};
pub use integrity::with_forced_checksums;
pub use launch::{run, run_with_result, NicSnapshot, RequestLog, SimError, SimOutcome};
pub use machine::{Machine, PeId};
pub use metrics::{
    with_forced_metrics, HistogramEntry, MetricsRegistry, MetricsSnapshot, WindowCounterEntry,
    WindowEntry,
};
pub use platforms::{cray_xc30, generic_smp, stampede, titan, Platform};
pub use sanitizer::{with_forced_mode, HazardKind, HazardReport, SanitizerMode};
pub use sched::with_forced_workers;
pub use slo::{BurnWindow, SloAlert, SloReport, SloSpec, SloWindow};
pub use stats::{FaultEvent, PlanDecision, StatsSnapshot};
pub use stream::{with_forced_stream, SnapshotRing, StreamConfig, StreamConsumer, StreamSample};
pub use tailprof::{
    attribute, req_paths, Exemplar, ReqPathReport, ReqPhase, TailAttribution, TailProfile,
    TailSampler, REQ_PHASES,
};
pub use trace::with_forced_tracing;
