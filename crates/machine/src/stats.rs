//! Machine-wide operation counters.
//!
//! The counters are deliberately coarse: they exist so benchmarks and tests
//! can assert *how* a result was achieved (e.g. "the 2dim_strided algorithm
//! issued 1000 messages where the naive one issued 50000"), not to be a
//! profiler.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters, incremented by the communication layers.
#[derive(Debug, Default)]
pub struct Stats {
    pub puts: AtomicU64,
    pub gets: AtomicU64,
    pub amos: AtomicU64,
    pub bytes_put: AtomicU64,
    pub bytes_get: AtomicU64,
    pub barriers: AtomicU64,
    pub quiets: AtomicU64,
    pub fences: AtomicU64,
    pub collectives: AtomicU64,
    /// Ordering hazards flagged by the conduit's consistency checker.
    pub hazards: AtomicU64,
    /// Cross-PE data races flagged by the machine's sanitizer
    /// (see `crate::sanitizer`).
    pub races: AtomicU64,
    /// Transfers that used a direct load/store fast path (`shmem_ptr`).
    pub local_fastpath: AtomicU64,
}

impl Stats {
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            amos: self.amos.load(Ordering::Relaxed),
            bytes_put: self.bytes_put.load(Ordering::Relaxed),
            bytes_get: self.bytes_get.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            quiets: self.quiets.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            collectives: self.collectives.load(Ordering::Relaxed),
            hazards: self.hazards.load(Ordering::Relaxed),
            races: self.races.load(Ordering::Relaxed),
            local_fastpath: self.local_fastpath.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }
}

/// Frozen copy of [`Stats`] returned with a simulation outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub puts: u64,
    pub gets: u64,
    pub amos: u64,
    pub bytes_put: u64,
    pub bytes_get: u64,
    pub barriers: u64,
    pub quiets: u64,
    pub fences: u64,
    pub collectives: u64,
    pub hazards: u64,
    pub races: u64,
    pub local_fastpath: u64,
}

impl StatsSnapshot {
    /// Total one-sided data operations.
    pub fn rma_ops(&self) -> u64 {
        self.puts + self.gets
    }

    /// Total payload bytes moved by one-sided data operations.
    pub fn rma_bytes(&self) -> u64 {
        self.bytes_put + self.bytes_get
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let s = Stats::default();
        Stats::bump(&s.puts);
        Stats::bump(&s.puts);
        Stats::add(&s.bytes_put, 128);
        Stats::bump(&s.gets);
        Stats::add(&s.bytes_get, 64);
        Stats::bump(&s.hazards);
        let snap = s.snapshot();
        assert_eq!(snap.puts, 2);
        assert_eq!(snap.gets, 1);
        assert_eq!(snap.rma_ops(), 3);
        assert_eq!(snap.rma_bytes(), 192);
        assert_eq!(snap.hazards, 1);
    }

    #[test]
    fn default_snapshot_is_zero() {
        assert_eq!(Stats::default().snapshot(), StatsSnapshot::default());
    }
}
