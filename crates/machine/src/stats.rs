//! Machine-wide operation counters.
//!
//! The counters are deliberately coarse: they exist so benchmarks and tests
//! can assert *how* a result was achieved (e.g. "the 2dim_strided algorithm
//! issued 1000 messages where the naive one issued 50000"), not to be a
//! profiler.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One strided-plan selection made by a `StridedPlanner`, recorded so
/// EXPERIMENTS figures can contrast predicted against measured costs and
/// show mispredictions.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDecision {
    /// PE that made the decision.
    pub pe: usize,
    /// Planner name ("heuristic", "tuned", ...).
    pub planner: &'static str,
    /// Label of the chosen plan ("runs", "dim1", "packed", ...).
    pub chosen: String,
    /// The planner's predicted cost for the chosen plan, ns.
    pub predicted_ns: f64,
    /// Every candidate the planner costed, as (plan label, predicted ns).
    pub candidates: Vec<(String, f64)>,
}

/// One injected fault (or retry-budget exhaustion, or PE death) as observed
/// by the layer that handled it — the fault-side analogue of
/// [`PlanDecision`], surfaced on `SimOutcome::fault_events`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// PE whose operation was hit (or the PE that died).
    pub pe: usize,
    /// Operation label ("put", "get", "amo", ... or "pe-failure").
    pub op: &'static str,
    /// Communication target of the faulted operation (== `pe` for deaths).
    pub target: usize,
    /// What happened: "drop", "corrupt", "exhausted", "pe-failure".
    pub kind: &'static str,
    /// Attempt number that faulted (1-based; 0 for deaths).
    pub attempt: u32,
    /// Virtual time charged for detection + backoff, ns.
    pub delay_ns: u64,
    /// Issuer's virtual clock when the fault was observed, ns.
    pub at_ns: u64,
}

/// Live counters, incremented by the communication layers.
#[derive(Debug, Default)]
pub struct Stats {
    pub puts: AtomicU64,
    pub gets: AtomicU64,
    pub amos: AtomicU64,
    /// Active messages executed at a target (see `pgas-conduit`'s AM layer).
    pub ams: AtomicU64,
    pub bytes_put: AtomicU64,
    pub bytes_get: AtomicU64,
    pub barriers: AtomicU64,
    pub quiets: AtomicU64,
    pub fences: AtomicU64,
    pub collectives: AtomicU64,
    /// Ordering hazards flagged by the conduit's consistency checker.
    pub hazards: AtomicU64,
    /// Cross-PE data races flagged by the machine's sanitizer
    /// (see `crate::sanitizer`).
    pub races: AtomicU64,
    /// Transfers that used a direct load/store fast path (`shmem_ptr`).
    pub local_fastpath: AtomicU64,
    /// Strided-plan decisions recorded (see [`PlanDecision`]).
    pub plans: AtomicU64,
    /// Lock-table entries still held when an image was torn down.
    pub lock_leaks: AtomicU64,
    /// Transient faults injected into message attempts (drops + corruptions).
    pub faults_injected: AtomicU64,
    /// Retry attempts performed after an injected fault.
    pub retries: AtomicU64,
    /// Operations that exhausted their retry budget.
    pub retries_exhausted: AtomicU64,
    /// PEs marked dead by a scheduled failure.
    pub pe_failures: AtomicU64,
    /// MCS locks whose dead holder was evicted by a waiting PE.
    pub lock_repairs: AtomicU64,
    /// Corrupted payloads detected by end-to-end CRC verification (each one
    /// is also an injected fault and, on retry, a retry).
    pub payload_corrupt: AtomicU64,
    plan_log: Mutex<Vec<PlanDecision>>,
    fault_log: Mutex<Vec<FaultEvent>>,
}

impl Stats {
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            amos: self.amos.load(Ordering::Relaxed),
            ams: self.ams.load(Ordering::Relaxed),
            bytes_put: self.bytes_put.load(Ordering::Relaxed),
            bytes_get: self.bytes_get.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            quiets: self.quiets.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            collectives: self.collectives.load(Ordering::Relaxed),
            hazards: self.hazards.load(Ordering::Relaxed),
            races: self.races.load(Ordering::Relaxed),
            local_fastpath: self.local_fastpath.load(Ordering::Relaxed),
            plans: self.plans.load(Ordering::Relaxed),
            lock_leaks: self.lock_leaks.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            retries_exhausted: self.retries_exhausted.load(Ordering::Relaxed),
            pe_failures: self.pe_failures.load(Ordering::Relaxed),
            lock_repairs: self.lock_repairs.load(Ordering::Relaxed),
            payload_corrupt: self.payload_corrupt.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Append a strided-plan decision to the log and bump the counter.
    pub fn record_plan(&self, decision: PlanDecision) {
        Stats::bump(&self.plans);
        self.plan_log.lock().unwrap().push(decision);
    }

    /// Take the accumulated plan decisions, leaving the log empty (the
    /// counter keeps its total). Called once when a simulation finishes.
    pub fn drain_plans(&self) -> Vec<PlanDecision> {
        std::mem::take(&mut *self.plan_log.lock().unwrap())
    }

    /// Append a fault event to the log (the caller bumps whichever counters
    /// apply — drops and deaths count differently).
    pub fn record_fault(&self, event: FaultEvent) {
        self.fault_log.lock().unwrap().push(event);
    }

    /// Take the accumulated fault events, leaving the log empty. Called once
    /// when a simulation finishes.
    pub fn drain_faults(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut *self.fault_log.lock().unwrap())
    }
}

/// Frozen copy of [`Stats`] returned with a simulation outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub puts: u64,
    pub gets: u64,
    pub amos: u64,
    /// Active messages executed at a target.
    pub ams: u64,
    pub bytes_put: u64,
    pub bytes_get: u64,
    pub barriers: u64,
    pub quiets: u64,
    pub fences: u64,
    pub collectives: u64,
    pub hazards: u64,
    pub races: u64,
    pub local_fastpath: u64,
    pub plans: u64,
    pub lock_leaks: u64,
    pub faults_injected: u64,
    pub retries: u64,
    pub retries_exhausted: u64,
    pub pe_failures: u64,
    pub lock_repairs: u64,
    /// Corrupted payloads detected by end-to-end CRC verification.
    pub payload_corrupt: u64,
}

impl StatsSnapshot {
    /// Total one-sided data operations.
    pub fn rma_ops(&self) -> u64 {
        self.puts + self.gets
    }

    /// Total payload bytes moved by one-sided data operations.
    pub fn rma_bytes(&self) -> u64 {
        self.bytes_put + self.bytes_get
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let s = Stats::default();
        Stats::bump(&s.puts);
        Stats::bump(&s.puts);
        Stats::add(&s.bytes_put, 128);
        Stats::bump(&s.gets);
        Stats::add(&s.bytes_get, 64);
        Stats::bump(&s.hazards);
        let snap = s.snapshot();
        assert_eq!(snap.puts, 2);
        assert_eq!(snap.gets, 1);
        assert_eq!(snap.rma_ops(), 3);
        assert_eq!(snap.rma_bytes(), 192);
        assert_eq!(snap.hazards, 1);
    }

    #[test]
    fn default_snapshot_is_zero() {
        assert_eq!(Stats::default().snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn fault_log_drains_once() {
        let s = Stats::default();
        s.record_fault(FaultEvent {
            pe: 1,
            op: "put",
            target: 3,
            kind: "drop",
            attempt: 1,
            delay_ns: 2500,
            at_ns: 100,
        });
        s.record_fault(FaultEvent {
            pe: 2,
            op: "pe-failure",
            target: 2,
            kind: "pe-failure",
            attempt: 0,
            delay_ns: 0,
            at_ns: 900,
        });
        let drained = s.drain_faults();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].kind, "drop");
        assert_eq!(drained[1].op, "pe-failure");
        assert!(s.drain_faults().is_empty(), "second drain sees an empty log");
    }

    #[test]
    fn plan_log_drains_once_and_counts_forever() {
        let s = Stats::default();
        s.record_plan(PlanDecision {
            pe: 0,
            planner: "heuristic",
            chosen: "dim1".into(),
            predicted_ns: 1200.0,
            candidates: vec![("runs".into(), 2000.0), ("dim1".into(), 1200.0)],
        });
        s.record_plan(PlanDecision {
            pe: 1,
            planner: "tuned",
            chosen: "runs".into(),
            predicted_ns: 900.0,
            candidates: vec![("runs".into(), 900.0)],
        });
        let drained = s.drain_plans();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].chosen, "dim1");
        assert_eq!(drained[1].planner, "tuned");
        assert!(s.drain_plans().is_empty(), "second drain sees an empty log");
        assert_eq!(s.snapshot().plans, 2, "counter survives the drain");
    }
}
