//! Metrics registry: counters, gauges and log-bucketed histograms keyed by
//! PE × op-kind × peer-node.
//!
//! Every layer of the stack (conduit, openshmem, caf) feeds this registry on
//! each operation when metrics are enabled. The registry is sharded per PE so
//! the hot path never takes a contended lock: each PE writes only its own
//! shard, and shards are merged into a deterministic [`MetricsSnapshot`] when
//! the simulation finishes. The snapshot also absorbs the global
//! [`StatsSnapshot`](crate::stats::StatsSnapshot) counters (faults, retries,
//! lock repairs, plan decisions), so a run's entire quantitative story is one
//! queryable value on `SimOutcome`, exportable as JSON or Prometheus text.
//!
//! Resolution order for enabling metrics mirrors the sanitizer and fault
//! plan: a thread-forced override ([`with_forced_metrics`]) beats the
//! explicit `MachineConfig::metrics` flag, which beats the `PGAS_METRICS`
//! environment default.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::json::Json;
use crate::stats::StatsSnapshot;

/// Sub-buckets per octave, as a power of two: each power-of-two range is
/// split into `2^SUB_BUCKET_BITS` log-linear (HDR-style) sub-buckets, so the
/// relative quantization error at the tail is bounded by `2^-SUB_BUCKET_BITS`
/// instead of a full octave. Raising this widens `.prom` exports but changes
/// no digests — `RunDigest` folds only exact counts and sums.
pub const SUB_BUCKET_BITS: u32 = 2;

/// Number of histogram buckets. The first four buckets hold the exact values
/// 1..=4 (and zeros in bucket 0); past that, bucket bounds advance
/// log-linearly: four equal-width sub-buckets per octave up to `2^63`.
pub const HISTOGRAM_BUCKETS: usize = 4 + 61 * (1 << SUB_BUCKET_BITS) as usize;

/// A metric key: metric name, owning PE, and optional peer node.
///
/// Names are `&'static str` by design — the set of metric names is closed at
/// compile time, which keeps the hot path allocation-free.
pub type MetricKey = (&'static str, Option<usize>);

#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Sparse log2 buckets: `bucket_index -> (count, exact value sum)`,
    /// sorted by index. Carrying the exact per-bucket sum alongside the
    /// count bounds the error of interpolated percentile estimates: the
    /// bucket's true mean anchors the interpolation, instead of reading
    /// values off the bucket edge.
    buckets: BTreeMap<u8, (u64, u64)>,
}

impl Histogram {
    fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let slot = self.buckets.entry(bucket_of(v)).or_insert((0, 0));
        slot.0 += 1;
        slot.1 = slot.1.saturating_add(v);
    }

    /// Fold `other` into `self` (used when merging per-PE window shards).
    fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&i, &(c, s)) in &other.buckets {
            let slot = self.buckets.entry(i).or_insert((0, 0));
            slot.0 += c;
            slot.1 = slot.1.saturating_add(s);
        }
    }
}

/// Interpolated percentile over sparse log2 buckets carrying exact per-bucket
/// `(count, sum)`. The estimate is linear interpolation across the containing
/// bucket's `[lo, hi]` range, shifted so the bucket's centre of mass sits at
/// the bucket's *exact* mean (`sum / count`) rather than its midpoint, then
/// clamped back into the bucket — so the error is bounded by the containing
/// bucket's width, and is exactly zero when the bucket holds one value or
/// many copies of the same value.
fn percentile_impl<'a>(
    count: u64,
    min: u64,
    max: u64,
    q: f64,
    buckets: impl Iterator<Item = &'a (u8, u64, u64)>,
) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for &(i, c, s) in buckets {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            let lo = if i == 0 { 0 } else { bucket_bound(i - 1) + 1 }.max(min);
            let hi = bucket_bound(i).min(max).max(lo);
            let mean = (s / c).clamp(lo, hi);
            if c == 1 {
                return mean;
            }
            let frac = (rank - seen - 1) as f64 / (c - 1) as f64;
            let est = lo as f64 + frac * (hi - lo) as f64;
            let mid = (lo as f64 + hi as f64) / 2.0;
            let shifted = est + (mean as f64 - mid);
            return shifted.round().clamp(lo as f64, hi as f64) as u64;
        }
        seen += c;
    }
    max
}

/// Log-linear bucket index for a value: the smallest `i` with
/// `v <= bucket_bound(i)`, clamped to [`HISTOGRAM_BUCKETS`]` - 1`.
fn bucket_of(v: u64) -> u8 {
    if v <= 4 {
        // Exact unit buckets: 0|1 -> 0, 2 -> 1, 3 -> 2, 4 -> 3.
        return v.saturating_sub(1) as u8;
    }
    // Octave of v-1 (>= 2 here), then which of the four equal-width
    // sub-buckets of that octave v-1 falls in.
    let o = 63 - (v - 1).leading_zeros();
    let m = (v - 1 - (1u64 << o)) >> (o - SUB_BUCKET_BITS);
    let i = 4 + (o - SUB_BUCKET_BITS) as usize * (1 << SUB_BUCKET_BITS) + m as usize;
    i.min(HISTOGRAM_BUCKETS - 1) as u8
}

/// Upper bound of bucket `i` (inclusive), as used for Prometheus `le` labels.
pub(crate) fn bucket_bound(i: u8) -> u64 {
    if (i as usize) < 4 {
        return i as u64 + 1;
    }
    let sub = 1u64 << SUB_BUCKET_BITS;
    let k = SUB_BUCKET_BITS + (i as u32 - 4) / sub as u32;
    let m = (i as u64 - 4) % sub;
    (1u64 << k) + ((m + 1) << (k - SUB_BUCKET_BITS))
}

#[derive(Debug, Default)]
struct Shard {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, Histogram>,
    /// Windowed histogram series: `(name, virtual-time window index)` →
    /// histogram of the values whose timestamps fell in that window. The
    /// peer dimension is dropped — a window series is a time series of the
    /// whole machine, not a per-link view.
    windows: BTreeMap<(&'static str, u64), Histogram>,
    /// Windowed counter series (throughput-over-time).
    window_counters: BTreeMap<(&'static str, u64), u64>,
}

/// Per-PE sharded metrics registry. See the module docs for the big picture.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    /// Width of one virtual-time window in ns; `0` disables the windowed
    /// series entirely (the default), keeping snapshots bit-identical with
    /// pre-windowing builds.
    window_ns: u64,
    shards: Vec<Mutex<Shard>>,
}

impl MetricsRegistry {
    pub fn new(enabled: bool, num_pes: usize) -> MetricsRegistry {
        MetricsRegistry::new_windowed(enabled, num_pes, 0)
    }

    /// A registry that additionally buckets [`MetricsRegistry::observe_windowed`]
    /// / [`MetricsRegistry::count_windowed`] feeds into fixed `window_ns`-wide
    /// virtual-time windows.
    pub fn new_windowed(enabled: bool, num_pes: usize, window_ns: u64) -> MetricsRegistry {
        let shards = if enabled {
            (0..num_pes.max(1)).map(|_| Mutex::new(Shard::default())).collect()
        } else {
            Vec::new()
        };
        MetricsRegistry { enabled, window_ns, shards }
    }

    /// Width of the virtual-time metric windows (0 = windowing off).
    #[inline]
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Whether the registry records anything. When false every recording
    /// method is a single-branch no-op.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Add `n` to the counter `name` on `pe`'s shard, keyed by `peer_node`.
    #[inline]
    pub fn count(&self, pe: usize, name: &'static str, peer_node: Option<usize>, n: u64) {
        if !self.enabled {
            return;
        }
        let mut shard = self.shards[pe].lock();
        *shard.counters.entry((name, peer_node)).or_insert(0) += n;
    }

    /// Set the gauge `name` on `pe`'s shard (last write wins).
    #[inline]
    pub fn gauge_set(&self, pe: usize, name: &'static str, peer_node: Option<usize>, v: u64) {
        if !self.enabled {
            return;
        }
        let mut shard = self.shards[pe].lock();
        shard.gauges.insert((name, peer_node), v);
    }

    /// Record `v` into the log2-bucketed histogram `name` on `pe`'s shard.
    #[inline]
    pub fn observe(&self, pe: usize, name: &'static str, peer_node: Option<usize>, v: u64) {
        if !self.enabled {
            return;
        }
        let mut shard = self.shards[pe].lock();
        shard.histograms.entry((name, peer_node)).or_default().observe(v);
    }

    /// Record `v` into the histogram `name` *and*, when windowing is
    /// configured, into the virtual-time window containing `t_ns` (normally
    /// the completion instant). With `window_ns == 0` this is exactly
    /// [`MetricsRegistry::observe`].
    #[inline]
    pub fn observe_windowed(
        &self,
        pe: usize,
        name: &'static str,
        peer_node: Option<usize>,
        t_ns: u64,
        v: u64,
    ) {
        if !self.enabled {
            return;
        }
        let mut shard = self.shards[pe].lock();
        shard.histograms.entry((name, peer_node)).or_default().observe(v);
        if let Some(w) = t_ns.checked_div(self.window_ns) {
            shard.windows.entry((name, w)).or_default().observe(v);
        }
    }

    /// Add `n` to counter `name` *and*, when windowing is configured, to the
    /// windowed counter series at `t_ns` (throughput-over-time).
    #[inline]
    pub fn count_windowed(
        &self,
        pe: usize,
        name: &'static str,
        peer_node: Option<usize>,
        t_ns: u64,
        n: u64,
    ) {
        if !self.enabled {
            return;
        }
        let mut shard = self.shards[pe].lock();
        *shard.counters.entry((name, peer_node)).or_insert(0) += n;
        if let Some(w) = t_ns.checked_div(self.window_ns) {
            *shard.window_counters.entry((name, w)).or_insert(0) += n;
        }
    }

    /// Live counter totals summed over PEs and peers, sorted by name — the
    /// cheap mid-run view the streaming snapshot channel samples. Unlike
    /// [`MetricsRegistry::snapshot`] this allocates no per-entry structure
    /// and takes each shard lock only briefly; like it, it only *reads*, so
    /// sampling mid-run perturbs nothing.
    pub fn live_counter_totals(&self) -> Vec<(&'static str, u64)> {
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (&(name, _), &value) in &shard.counters {
                *totals.entry(name).or_insert(0) += value;
            }
        }
        totals.into_iter().collect()
    }

    /// The live windowed series for histogram `name`, merged across PE
    /// shards — the mid-run view the streaming snapshot channel samples for
    /// `pgas_top -- serve`. Read-only: sampling mid-run perturbs nothing and
    /// moves no virtual clock.
    pub fn live_window_series(&self, name: &'static str) -> Vec<WindowEntry> {
        if !self.enabled || self.window_ns == 0 {
            return Vec::new();
        }
        let mut merged: BTreeMap<u64, Histogram> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (&(n, w), h) in &shard.windows {
                if n == name {
                    merged.entry(w).or_default().merge(h);
                }
            }
        }
        merged
            .into_iter()
            .map(|(w, h)| WindowEntry::from_histogram(name, w, self.window_ns, &h))
            .collect()
    }

    /// Merge every shard into a deterministic snapshot, folding in the
    /// global stats counters.
    pub fn snapshot(&self, stats: StatsSnapshot) -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        let mut wmap: BTreeMap<(&'static str, u64), Histogram> = BTreeMap::new();
        let mut wcounters: BTreeMap<(&'static str, u64), u64> = BTreeMap::new();
        for (pe, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock();
            for (&(name, peer_node), &value) in &shard.counters {
                counters.push(MetricEntry { name, pe, peer_node, value });
            }
            for (&(name, peer_node), &value) in &shard.gauges {
                gauges.push(MetricEntry { name, pe, peer_node, value });
            }
            for (&(name, peer_node), h) in &shard.histograms {
                histograms.push(HistogramEntry {
                    name,
                    pe,
                    peer_node,
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    buckets: h.buckets.iter().map(|(&i, &(c, s))| (i, c, s)).collect(),
                });
            }
            for (&key, h) in &shard.windows {
                wmap.entry(key).or_default().merge(h);
            }
            for (&key, &v) in &shard.window_counters {
                *wcounters.entry(key).or_insert(0) += v;
            }
        }
        let windows = wmap
            .into_iter()
            .map(|((name, w), h)| WindowEntry::from_histogram(name, w, self.window_ns, &h))
            .collect();
        let window_counters = wcounters
            .into_iter()
            .map(|((name, window), value)| WindowCounterEntry {
                name,
                window,
                start_ns: window * self.window_ns,
                value,
            })
            .collect();
        MetricsSnapshot {
            enabled: self.enabled,
            window_ns: self.window_ns,
            stats,
            counters,
            gauges,
            histograms,
            windows,
            window_counters,
        }
    }
}

/// One counter or gauge sample in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    pub name: &'static str,
    pub pe: usize,
    pub peer_node: Option<usize>,
    pub value: u64,
}

/// One histogram in a snapshot, with sparse log2 buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramEntry {
    pub name: &'static str,
    pub pe: usize,
    pub peer_node: Option<usize>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `(bucket_index, count, exact value sum)` triples, sorted by index.
    /// Bucket `i` covers values `<= 2^i`.
    pub buckets: Vec<(u8, u64, u64)>,
}

impl HistogramEntry {
    /// Interpolated percentile estimate (`q` in `[0, 1]`) with error bounded
    /// by the containing bucket's width — see [`percentile_impl`].
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_impl(self.count, self.min, self.max, q, self.buckets.iter())
    }
}

/// One virtual-time window of a windowed histogram series, merged over PEs
/// and peers: the machine-wide latency distribution of the values whose
/// timestamps fell in `[start_ns, start_ns + window_ns)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowEntry {
    pub name: &'static str,
    /// Window index (`timestamp / window_ns`).
    pub window: u64,
    /// Window start in virtual ns (`window * window_ns`).
    pub start_ns: u64,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `(bucket_index, count, exact value sum)` triples, sorted by index.
    pub buckets: Vec<(u8, u64, u64)>,
}

impl WindowEntry {
    fn from_histogram(name: &'static str, window: u64, window_ns: u64, h: &Histogram) -> Self {
        WindowEntry {
            name,
            window,
            start_ns: window * window_ns,
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h.buckets.iter().map(|(&i, &(c, s))| (i, c, s)).collect(),
        }
    }

    /// Interpolated percentile estimate (`q` in `[0, 1]`) with error bounded
    /// by the containing bucket's width — see [`percentile_impl`].
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_impl(self.count, self.min, self.max, q, self.buckets.iter())
    }
}

/// One virtual-time window of a windowed counter series (merged over PEs and
/// peers): how many events `name` counted in `[start_ns, start_ns + window_ns)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowCounterEntry {
    pub name: &'static str,
    pub window: u64,
    pub start_ns: u64,
    pub value: u64,
}

/// Immutable, deterministic view of a finished run's metrics.
///
/// Entries are sorted by `(pe, name, peer_node)`; two runs with identical
/// virtual behaviour produce bit-identical snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Whether the registry was recording. A disabled run still carries the
    /// stats block so `SimOutcome.metrics` is always meaningful.
    pub enabled: bool,
    /// Virtual-time window width of the windowed series (0 = none recorded).
    pub window_ns: u64,
    /// The global stats counters, absorbed into the snapshot.
    pub stats: StatsSnapshot,
    pub counters: Vec<MetricEntry>,
    pub gauges: Vec<MetricEntry>,
    pub histograms: Vec<HistogramEntry>,
    /// Windowed histogram series, sorted by `(name, window)`.
    pub windows: Vec<WindowEntry>,
    /// Windowed counter series, sorted by `(name, window)`.
    pub window_counters: Vec<WindowCounterEntry>,
}

impl MetricsSnapshot {
    /// Total of counter `name` summed across PEs and peers.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|e| e.name == name).map(|e| e.value).sum()
    }

    /// The windowed histogram series for `name`, in window order — the
    /// deterministic p50/p99/p999-over-time view.
    pub fn window_series<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a WindowEntry> {
        self.windows.iter().filter(move |w| w.name == name)
    }

    /// The windowed counter series for `name`, in window order — the
    /// throughput-over-time view.
    pub fn window_counter_series<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = &'a WindowCounterEntry> {
        self.window_counters.iter().filter(move |w| w.name == name)
    }

    /// The histogram entries for `name`, across all PEs and peers.
    pub fn histograms_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = &'a HistogramEntry> {
        self.histograms.iter().filter(move |h| h.name == name)
    }

    /// Merge all histograms named `name` into one `(count, sum)` pair.
    pub fn histogram_totals(&self, name: &str) -> (u64, u64) {
        self.histograms_named(name).fold((0, 0), |(c, s), h| (c + h.count, s + h.sum))
    }

    /// JSON export (stable field order).
    pub fn to_json(&self) -> Json {
        let entry = |e: &MetricEntry| {
            let mut fields =
                vec![("name".to_string(), Json::str(e.name)), ("pe".to_string(), Json::uint(e.pe))];
            if let Some(node) = e.peer_node {
                fields.push(("peer_node".to_string(), Json::uint(node)));
            }
            fields.push(("value".to_string(), Json::uint(e.value as usize)));
            Json::Object(fields)
        };
        let buckets_json = |buckets: &[(u8, u64, u64)]| {
            Json::Array(
                buckets
                    .iter()
                    .map(|&(i, c, s)| {
                        Json::Object(vec![
                            ("le".to_string(), Json::uint(bucket_bound(i) as usize)),
                            ("count".to_string(), Json::uint(c as usize)),
                            ("sum".to_string(), Json::uint(s as usize)),
                        ])
                    })
                    .collect(),
            )
        };
        let hist = |h: &HistogramEntry| {
            let mut fields =
                vec![("name".to_string(), Json::str(h.name)), ("pe".to_string(), Json::uint(h.pe))];
            if let Some(node) = h.peer_node {
                fields.push(("peer_node".to_string(), Json::uint(node)));
            }
            fields.push(("count".to_string(), Json::uint(h.count as usize)));
            fields.push(("sum".to_string(), Json::uint(h.sum as usize)));
            fields.push(("min".to_string(), Json::uint(h.min as usize)));
            fields.push(("max".to_string(), Json::uint(h.max as usize)));
            fields.push(("buckets".to_string(), buckets_json(&h.buckets)));
            Json::Object(fields)
        };
        let window = |w: &WindowEntry| {
            Json::Object(vec![
                ("name".to_string(), Json::str(w.name)),
                ("window".to_string(), Json::uint(w.window as usize)),
                ("start_ns".to_string(), Json::uint(w.start_ns as usize)),
                ("count".to_string(), Json::uint(w.count as usize)),
                ("sum".to_string(), Json::uint(w.sum as usize)),
                ("min".to_string(), Json::uint(w.min as usize)),
                ("max".to_string(), Json::uint(w.max as usize)),
                ("p50".to_string(), Json::uint(w.percentile(0.50) as usize)),
                ("p99".to_string(), Json::uint(w.percentile(0.99) as usize)),
                ("p999".to_string(), Json::uint(w.percentile(0.999) as usize)),
                ("buckets".to_string(), buckets_json(&w.buckets)),
            ])
        };
        let wcounter = |w: &WindowCounterEntry| {
            Json::Object(vec![
                ("name".to_string(), Json::str(w.name)),
                ("window".to_string(), Json::uint(w.window as usize)),
                ("start_ns".to_string(), Json::uint(w.start_ns as usize)),
                ("value".to_string(), Json::uint(w.value as usize)),
            ])
        };
        Json::Object(vec![
            ("enabled".to_string(), Json::Bool(self.enabled)),
            ("window_ns".to_string(), Json::uint(self.window_ns as usize)),
            ("stats".to_string(), stats_json(&self.stats)),
            ("counters".to_string(), Json::Array(self.counters.iter().map(entry).collect())),
            ("gauges".to_string(), Json::Array(self.gauges.iter().map(entry).collect())),
            ("histograms".to_string(), Json::Array(self.histograms.iter().map(hist).collect())),
            ("windows".to_string(), Json::Array(self.windows.iter().map(window).collect())),
            (
                "window_counters".to_string(),
                Json::Array(self.window_counters.iter().map(wcounter).collect()),
            ),
        ])
    }

    /// Prometheus text exposition format. Counter names become
    /// `pgas_<name>_total`, gauges `pgas_<name>`, histograms the standard
    /// `_bucket`/`_sum`/`_count` triple with cumulative log-linear `le`
    /// bounds. Global stats counters are exported as `pgas_stats_<field>`.
    pub fn to_prometheus(&self) -> String {
        self.prometheus_impl(None)
    }

    /// [`MetricsSnapshot::to_prometheus`] plus tail-attribution exemplars:
    /// every windowed `quantile="0.999"` sample whose window has retained
    /// exemplars gains an OpenMetrics-style exemplar trailer
    /// (`# {req="...",pe="...",cause="..."} latency`), and a dedicated
    /// `pgas_tail_exemplar` gauge series lists each window's k worst
    /// requests with their dominant cause.
    pub fn to_prometheus_with_tail(&self, tail: &crate::tailprof::TailAttribution) -> String {
        self.prometheus_impl(Some(tail))
    }

    fn prometheus_impl(&self, tail: Option<&crate::tailprof::TailAttribution>) -> String {
        let mut out = String::new();
        for (field, value) in stats_fields(&self.stats) {
            out.push_str(&format!("# TYPE pgas_stats_{field} counter\n"));
            out.push_str(&format!("pgas_stats_{field} {value}\n"));
        }
        let mut last_name = "";
        for e in &self.counters {
            if e.name != last_name {
                out.push_str(&format!("# TYPE pgas_{}_total counter\n", e.name));
                last_name = e.name;
            }
            out.push_str(&format!(
                "pgas_{}_total{{{}}} {}\n",
                e.name,
                labels(e.pe, e.peer_node),
                e.value
            ));
        }
        last_name = "";
        for e in &self.gauges {
            if e.name != last_name {
                out.push_str(&format!("# TYPE pgas_{} gauge\n", e.name));
                last_name = e.name;
            }
            out.push_str(&format!(
                "pgas_{}{{{}}} {}\n",
                e.name,
                labels(e.pe, e.peer_node),
                e.value
            ));
        }
        last_name = "";
        for h in &self.histograms {
            if h.name != last_name {
                out.push_str(&format!("# TYPE pgas_{} histogram\n", h.name));
                last_name = h.name;
            }
            let base = labels(h.pe, h.peer_node);
            let mut cumulative = 0u64;
            for &(i, c, _) in &h.buckets {
                cumulative += c;
                out.push_str(&format!(
                    "pgas_{}_bucket{{{},le=\"{}\"}} {}\n",
                    h.name,
                    base,
                    bucket_bound(i),
                    cumulative
                ));
            }
            out.push_str(&format!("pgas_{}_bucket{{{},le=\"+Inf\"}} {}\n", h.name, base, h.count));
            out.push_str(&format!("pgas_{}_sum{{{}}} {}\n", h.name, base, h.sum));
            out.push_str(&format!("pgas_{}_count{{{}}} {}\n", h.name, base, h.count));
        }
        // Windowed series: each histogram window becomes one summary block
        // labelled by its virtual-time window start, each counter window one
        // sample of a `_window_total` counter series.
        last_name = "";
        for w in &self.windows {
            if w.name != last_name {
                out.push_str(&format!("# TYPE pgas_{}_window summary\n", w.name));
                last_name = w.name;
            }
            let base = format!("window_start_ns=\"{}\"", w.start_ns);
            let profile = tail.and_then(|t| {
                t.profile_at(w.start_ns.checked_div(t.window_ns).unwrap_or(0))
            });
            for (label, q) in [("0.5", 0.50), ("0.99", 0.99), ("0.999", 0.999)] {
                out.push_str(&format!(
                    "pgas_{}_window{{{},quantile=\"{}\"}} {}",
                    w.name,
                    base,
                    label,
                    w.percentile(q)
                ));
                // The tail quantile carries the window's worst request as an
                // OpenMetrics exemplar annotation.
                if label == "0.999" {
                    if let Some(e) = profile.and_then(|p| p.exemplars.first()) {
                        out.push_str(&format!(
                            " # {{req=\"{:#x}\",pe=\"{}\",cause=\"{}\"}} {}",
                            e.id,
                            e.pe,
                            e.dominant.label(),
                            e.latency_ns
                        ));
                    }
                }
                out.push('\n');
            }
            out.push_str(&format!("pgas_{}_window_sum{{{}}} {}\n", w.name, base, w.sum));
            out.push_str(&format!("pgas_{}_window_count{{{}}} {}\n", w.name, base, w.count));
        }
        last_name = "";
        for w in &self.window_counters {
            if w.name != last_name {
                out.push_str(&format!("# TYPE pgas_{}_window_total counter\n", w.name));
                last_name = w.name;
            }
            out.push_str(&format!(
                "pgas_{}_window_total{{window_start_ns=\"{}\"}} {}\n",
                w.name, w.start_ns, w.value
            ));
        }
        out
    }
}

fn labels(pe: usize, peer_node: Option<usize>) -> String {
    match peer_node {
        Some(node) => format!("pe=\"{pe}\",peer_node=\"{node}\""),
        None => format!("pe=\"{pe}\""),
    }
}

fn stats_fields(s: &StatsSnapshot) -> Vec<(&'static str, u64)> {
    vec![
        ("puts", s.puts),
        ("gets", s.gets),
        ("amos", s.amos),
        ("bytes_put", s.bytes_put),
        ("bytes_get", s.bytes_get),
        ("barriers", s.barriers),
        ("quiets", s.quiets),
        ("fences", s.fences),
        ("collectives", s.collectives),
        ("hazards", s.hazards),
        ("races", s.races),
        ("local_fastpath", s.local_fastpath),
        ("plans", s.plans),
        ("lock_leaks", s.lock_leaks),
        ("faults_injected", s.faults_injected),
        ("retries", s.retries),
        ("retries_exhausted", s.retries_exhausted),
        ("pe_failures", s.pe_failures),
        ("lock_repairs", s.lock_repairs),
    ]
}

fn stats_json(s: &StatsSnapshot) -> Json {
    Json::Object(
        stats_fields(s).into_iter().map(|(k, v)| (k.to_string(), Json::uint(v as usize))).collect(),
    )
}

// ---------------------------------------------------------------------------
// Enable-flag resolution: forced (thread) > config > environment default.
// ---------------------------------------------------------------------------

/// Parse a boolean-ish env/config flag value.
pub(crate) fn parse_flag(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// Process-wide default from `PGAS_METRICS`, read once.
pub(crate) fn env_default() -> Option<bool> {
    static ENV_DEFAULT: OnceLock<Option<bool>> = OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| std::env::var("PGAS_METRICS").ok().and_then(|v| parse_flag(&v)))
}

thread_local! {
    static FORCED_METRICS: Cell<Option<bool>> = const { Cell::new(None) };
}

pub(crate) fn forced_metrics() -> Option<bool> {
    FORCED_METRICS.with(|c| c.get())
}

/// Run `f` with metrics recording forced on or off for machines constructed
/// on this thread, overriding both config and environment. Restores the
/// previous override on exit (including unwinds).
pub fn with_forced_metrics<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_METRICS.with(|c| c.set(self.0));
        }
    }
    let prev = FORCED_METRICS.with(|c| c.replace(Some(on)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_log_linear() {
        // Exact unit buckets up front...
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        // ...then four sub-buckets per octave: (4,5], (5,6], (6,7], (7,8]...
        assert_eq!(bucket_of(5), 4);
        assert_eq!(bucket_of(8), 7);
        assert_eq!(bucket_of(9), 8);
        // An octave boundary stays a bucket boundary (le="1024" survives).
        assert_eq!(bucket_of(1024), 35);
        assert_eq!(bucket_bound(35), 1024);
        assert_eq!(bucket_of(1025), 36);
        assert_eq!(bucket_bound(36), 1280);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS as u8 - 1);
        // Bounds are strictly increasing and invert bucket_of everywhere.
        for i in 0..HISTOGRAM_BUCKETS as u8 {
            if i > 0 {
                assert!(bucket_bound(i) > bucket_bound(i - 1), "bounds increase at {i}");
            }
            assert_eq!(bucket_of(bucket_bound(i)), i, "bound of {i} maps back");
            assert_eq!(bucket_of(bucket_bound(i) + 1).max(i), bucket_of(bucket_bound(i) + 1));
        }
        assert_eq!(bucket_bound(HISTOGRAM_BUCKETS as u8 - 1), 1u64 << 63);
        // Tail quantization error is bounded by a quarter octave.
        let v = 150_000u64;
        let b = bucket_of(v);
        let width = bucket_bound(b) - bucket_bound(b - 1);
        assert!(width * 4 <= bucket_bound(b), "sub-bucket width is <= bound/4");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new(false, 4);
        reg.count(0, "put", Some(1), 3);
        reg.observe(1, "put_ns", None, 42);
        reg.gauge_set(2, "depth", None, 7);
        let snap = reg.snapshot(StatsSnapshot::default());
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = MetricsRegistry::new(true, 2);
        reg.count(1, "put", Some(0), 2);
        reg.count(0, "put", Some(1), 5);
        reg.count(0, "get", None, 1);
        reg.observe(0, "put_ns", Some(1), 100);
        reg.observe(0, "put_ns", Some(1), 3000);
        let snap = reg.snapshot(StatsSnapshot::default());
        assert_eq!(snap.counter_total("put"), 7);
        assert_eq!(snap.counter_total("get"), 1);
        // PE-major order, then name.
        let names: Vec<(usize, &str)> = snap.counters.iter().map(|e| (e.pe, e.name)).collect();
        assert_eq!(names, vec![(0, "get"), (0, "put"), (1, "put")]);
        let (count, sum) = snap.histogram_totals("put_ns");
        assert_eq!((count, sum), (2, 3100));
        let h = snap.histograms_named("put_ns").next().unwrap();
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 3000);
        assert_eq!(h.buckets.len(), 2);
    }

    #[test]
    fn live_counter_totals_aggregate_across_shards() {
        let reg = MetricsRegistry::new(true, 2);
        reg.count(0, "put", Some(1), 2);
        reg.count(1, "put", Some(0), 3);
        reg.count(1, "get", None, 1);
        assert_eq!(reg.live_counter_totals(), vec![("get", 1), ("put", 5)]);
        let snap = reg.snapshot(StatsSnapshot::default());
        assert_eq!(snap.counter_total("put"), 5, "live view consumed nothing");
        assert!(MetricsRegistry::new(false, 2).live_counter_totals().is_empty());
    }

    #[test]
    fn prometheus_export_has_cumulative_buckets() {
        let reg = MetricsRegistry::new(true, 1);
        reg.observe(0, "put_ns", Some(1), 1);
        reg.observe(0, "put_ns", Some(1), 2);
        reg.observe(0, "put_ns", Some(1), 1000);
        reg.count(0, "put", Some(1), 3);
        let text = reg.snapshot(StatsSnapshot::default()).to_prometheus();
        assert!(text.contains("pgas_put_total{pe=\"0\",peer_node=\"1\"} 3"));
        assert!(text.contains("pgas_put_ns_bucket{pe=\"0\",peer_node=\"1\",le=\"1\"} 1"));
        assert!(text.contains("pgas_put_ns_bucket{pe=\"0\",peer_node=\"1\",le=\"2\"} 2"));
        assert!(text.contains("pgas_put_ns_bucket{pe=\"0\",peer_node=\"1\",le=\"1024\"} 3"));
        assert!(text.contains("pgas_put_ns_bucket{pe=\"0\",peer_node=\"1\",le=\"+Inf\"} 3"));
        assert!(text.contains("pgas_put_ns_sum{pe=\"0\",peer_node=\"1\"} 1003"));
        assert!(text.contains("pgas_put_ns_count{pe=\"0\",peer_node=\"1\"} 3"));
        assert!(text.contains("pgas_stats_puts 0"));
    }

    #[test]
    fn json_export_parses() {
        let reg = MetricsRegistry::new(true, 1);
        reg.count(0, "put", Some(1), 3);
        reg.observe(0, "put_ns", None, 10);
        reg.gauge_set(0, "depth", None, 2);
        let json = reg.snapshot(StatsSnapshot::default()).to_json().pretty();
        let parsed = crate::json::parse(&json).expect("metrics JSON parses");
        assert_eq!(parsed.get("counters").and_then(|c| c.as_array()).map(|a| a.len()), Some(1));
        assert_eq!(parsed.get("histograms").and_then(|c| c.as_array()).map(|a| a.len()), Some(1));
    }

    #[test]
    fn forced_override_restores_on_exit() {
        assert_eq!(forced_metrics(), None);
        with_forced_metrics(true, || {
            assert_eq!(forced_metrics(), Some(true));
            with_forced_metrics(false, || assert_eq!(forced_metrics(), Some(false)));
            assert_eq!(forced_metrics(), Some(true));
        });
        assert_eq!(forced_metrics(), None);
    }

    #[test]
    fn percentiles_interpolate_with_bounded_error() {
        let reg = MetricsRegistry::new(true, 1);
        // 100 copies of the same value: every percentile is exact, because
        // the bucket's exact mean pins the estimate.
        for _ in 0..100 {
            reg.observe(0, "put_ns", None, 700);
        }
        let snap = reg.snapshot(StatsSnapshot::default());
        let h = snap.histograms_named("put_ns").next().unwrap();
        assert_eq!(h.percentile(0.50), 700);
        assert_eq!(h.percentile(0.99), 700);
        assert_eq!(h.percentile(0.999), 700);

        // Spread values: estimates stay within the containing log2 bucket.
        let reg = MetricsRegistry::new(true, 1);
        for v in 1..=1000u64 {
            reg.observe(0, "get_ns", None, v);
        }
        let snap = reg.snapshot(StatsSnapshot::default());
        let h = snap.histograms_named("get_ns").next().unwrap();
        let p50 = h.percentile(0.50);
        // True p50 = 500, containing bucket covers (256, 512].
        assert!((257..=512).contains(&p50), "p50 estimate {p50} outside its bucket");
        let p999 = h.percentile(0.999);
        // True p999 = 1000, containing bucket covers (512, 1024] but is
        // clamped to the observed max.
        assert!((513..=1000).contains(&p999), "p999 estimate {p999} outside its bucket");
        assert_eq!(h.percentile(1.0), 1000, "p100 is the exact max");
    }

    #[test]
    fn windowed_observations_build_time_series() {
        let reg = MetricsRegistry::new_windowed(true, 2, 1000);
        assert_eq!(reg.window_ns(), 1000);
        // Two PEs feed the same metric; windows merge across shards.
        reg.observe_windowed(0, "serve_latency_ns", None, 100, 10);
        reg.observe_windowed(1, "serve_latency_ns", None, 900, 30);
        reg.observe_windowed(0, "serve_latency_ns", None, 2500, 80);
        reg.count_windowed(0, "serve_requests", None, 100, 1);
        reg.count_windowed(1, "serve_requests", None, 2600, 2);
        let snap = reg.snapshot(StatsSnapshot::default());
        assert_eq!(snap.window_ns, 1000);
        let wins: Vec<_> = snap.window_series("serve_latency_ns").collect();
        assert_eq!(wins.len(), 2);
        assert_eq!((wins[0].window, wins[0].start_ns, wins[0].count), (0, 0, 2));
        assert_eq!(wins[0].sum, 40);
        assert_eq!((wins[1].window, wins[1].start_ns, wins[1].count), (2, 2000, 1));
        assert_eq!(wins[1].percentile(0.99), 80);
        let counts: Vec<_> =
            snap.window_counter_series("serve_requests").map(|w| (w.start_ns, w.value)).collect();
        assert_eq!(counts, vec![(0, 1), (2000, 2)]);
        // The plain (unwindowed) histogram still carries the total.
        assert_eq!(snap.histogram_totals("serve_latency_ns"), (3, 120));
        // Live view matches the snapshot's merged series.
        let live = reg.live_window_series("serve_latency_ns");
        assert_eq!(live.len(), 2);
        assert_eq!(&live[0], wins[0]);
        assert_eq!(&live[1], wins[1]);
        // Prometheus export carries the windowed series.
        let text = snap.to_prometheus();
        assert!(
            text.contains("pgas_serve_latency_ns_window{window_start_ns=\"0\",quantile=\"0.5\"}")
        );
        assert!(text.contains("pgas_serve_latency_ns_window_count{window_start_ns=\"2000\"} 1"));
        assert!(text.contains("pgas_serve_requests_window_total{window_start_ns=\"2000\"} 2"));
    }

    #[test]
    fn windowing_off_records_no_window_series() {
        let reg = MetricsRegistry::new(true, 1);
        reg.observe_windowed(0, "serve_latency_ns", None, 500, 42);
        reg.count_windowed(0, "serve_requests", None, 500, 1);
        let snap = reg.snapshot(StatsSnapshot::default());
        assert_eq!(snap.window_ns, 0);
        assert!(snap.windows.is_empty());
        assert!(snap.window_counters.is_empty());
        assert!(reg.live_window_series("serve_latency_ns").is_empty());
        // The unwindowed feeds still landed.
        assert_eq!(snap.histogram_totals("serve_latency_ns"), (1, 42));
        assert_eq!(snap.counter_total("serve_requests"), 1);
    }

    #[test]
    fn snapshots_are_bit_identical_for_identical_feeds() {
        let feed = |reg: &MetricsRegistry| {
            reg.count(0, "put", Some(1), 2);
            reg.observe(1, "get_ns", Some(0), 77);
            reg.gauge_set(1, "depth", None, 4);
        };
        let a = MetricsRegistry::new(true, 2);
        let b = MetricsRegistry::new(true, 2);
        feed(&a);
        feed(&b);
        assert_eq!(a.snapshot(StatsSnapshot::default()), b.snapshot(StatsSnapshot::default()));
    }
}
