//! Network interface model: per-node serializing resources in virtual time.
//!
//! Each node owns one NIC with **two independent lanes** — transmit and
//! receive — because real interconnects are full duplex: an incoming stream
//! does not steal bandwidth from an outgoing one, but two outgoing streams
//! share the TX lane. A message that crosses the network reserves occupancy
//! on the source's TX lane and the destination's RX lane, following the
//! classic resource rule of discrete-event models:
//!
//! ```text
//! begin = max(lane_busy_until, requested_start)
//! lane_busy_until = begin + occupancy
//! ```
//!
//! With one active pair per node the reservation never waits and the model
//! degenerates to latency + size/bandwidth. With k pairs sharing a node
//! (the paper's 16-pair tests) occupancy serializes and per-pair bandwidth
//! approaches 1/k of the link — exactly the contention effect Figures 2, 3,
//! 6 and 7 of the paper measure.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which direction of the full-duplex link a reservation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Egress: this node is sending.
    Tx,
    /// Ingress: this node is receiving.
    Rx,
}

/// Outcome of a NIC reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Virtual time at which the message actually started occupying the lane.
    pub begin: u64,
    /// Virtual time at which the lane becomes free again.
    pub end: u64,
}

/// One node's NIC.
#[derive(Debug, Default)]
pub struct Nic {
    tx_busy_until: Mutex<u64>,
    rx_busy_until: Mutex<u64>,
    messages: AtomicU64,
    bytes: AtomicU64,
    busy_ns: AtomicU64,
}

impl Nic {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve `occupancy_ns` on `lane` no earlier than `start`.
    pub fn reserve(&self, lane: Lane, start: u64, occupancy_ns: u64, bytes: usize) -> Reservation {
        let lane_busy = match lane {
            Lane::Tx => &self.tx_busy_until,
            Lane::Rx => &self.rx_busy_until,
        };
        let mut busy = lane_busy.lock();
        let begin = (*busy).max(start);
        let end = begin + occupancy_ns;
        *busy = end;
        drop(busy);
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.busy_ns.fetch_add(occupancy_ns, Ordering::Relaxed);
        Reservation { begin, end }
    }

    /// Reserve on the transmit lane.
    pub fn reserve_tx(&self, start: u64, occupancy_ns: u64, bytes: usize) -> Reservation {
        self.reserve(Lane::Tx, start, occupancy_ns, bytes)
    }

    /// Reserve on the receive lane.
    pub fn reserve_rx(&self, start: u64, occupancy_ns: u64, bytes: usize) -> Reservation {
        self.reserve(Lane::Rx, start, occupancy_ns, bytes)
    }

    /// Number of messages that crossed this NIC (both lanes).
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total bytes that crossed this NIC (both lanes; a message between two
    /// nodes is counted once per endpoint, so whole-machine sums count each
    /// transfer twice — once at each NIC it occupied).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total virtual ns the NIC's lanes spent occupied.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_reservation_starts_on_time() {
        let nic = Nic::new();
        let r = nic.reserve_tx(1000, 50, 400);
        assert_eq!(r, Reservation { begin: 1000, end: 1050 });
        // A later, non-overlapping request is also unaffected.
        let r2 = nic.reserve_tx(2000, 10, 80);
        assert_eq!(r2, Reservation { begin: 2000, end: 2010 });
    }

    #[test]
    fn overlapping_reservations_serialize_within_a_lane() {
        let nic = Nic::new();
        let a = nic.reserve_tx(100, 100, 800);
        let b = nic.reserve_tx(100, 100, 800);
        let c = nic.reserve_tx(150, 100, 800);
        assert_eq!(a.end, 200);
        assert_eq!(b.begin, 200);
        assert_eq!(b.end, 300);
        assert_eq!(c.begin, 300);
        assert_eq!(c.end, 400);
    }

    #[test]
    fn lanes_are_full_duplex() {
        let nic = Nic::new();
        let tx = nic.reserve_tx(100, 1000, 8000);
        let rx = nic.reserve_rx(100, 1000, 8000);
        assert_eq!(tx.begin, 100, "TX unaffected by RX");
        assert_eq!(rx.begin, 100, "RX unaffected by TX");
        // But a second reservation on the same lane waits.
        assert_eq!(nic.reserve_rx(100, 10, 80).begin, 1100);
    }

    #[test]
    fn stats_accumulate_across_lanes() {
        let nic = Nic::new();
        nic.reserve_tx(0, 10, 100);
        nic.reserve_rx(0, 20, 200);
        assert_eq!(nic.messages(), 2);
        assert_eq!(nic.bytes(), 300);
        assert_eq!(nic.busy_ns(), 30);
    }

    #[test]
    fn k_way_sharing_divides_lane_bandwidth() {
        // k back-to-back transfers issued at the same instant should finish
        // k times later than one alone — the emergent 1/k bandwidth share.
        let nic = Nic::new();
        let k = 16;
        let occ = 1_000;
        let mut last_end = 0;
        for _ in 0..k {
            last_end = nic.reserve_tx(0, occ, 4096).end;
        }
        assert_eq!(last_end, k * occ);
    }
}
