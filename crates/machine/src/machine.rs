//! The machine proper: PE state, clocks, heaps, NICs, barriers.

use crate::config::MachineConfig;
use crate::fault::{FaultKind, FaultPlan, FaultState};
use crate::heap::Heap;
use crate::metrics::MetricsRegistry;
use crate::nic::Nic;
use crate::sanitizer::{HazardReport, Sanitizer, SanitizerMode};
use crate::sched::SchedState;
use crate::stats::{FaultEvent, Stats};
use crate::stream::{SnapshotRing, StreamConfig, StreamSample};
use crate::sync::{ClockBarrier, NotifyCell, Poison};
use crate::trace::{Span, SpanKind, Tracer};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Index of a processing element, `0..total_pes`.
pub type PeId = usize;

/// Hard cap on PE count (the CAF lock pointer encoding reserves 20 bits for
/// the image index, see the paper §IV-D; we stay within it).
pub const MAX_PES: usize = 1 << 20;

/// State owned by one PE.
struct PeState {
    heap: Heap,
    clock: AtomicU64,
    notify: NotifyCell,
}

/// Runtime state of the live streaming snapshot channel (see
/// [`crate::stream`]): the configured cadence and ring, the next virtual
/// time at which a sample is due, and the sample sequence counter.
struct StreamState {
    cadence_ns: u64,
    ring: Arc<SnapshotRing>,
    /// Next cadence boundary a sample is owed for; claimed by CAS so
    /// exactly one PE thread produces each sample.
    next_tick: AtomicU64,
    seq: AtomicU64,
    /// The originating config, kept so push consumers registered on it —
    /// even after the machine was built — see every sample.
    cfg: StreamConfig,
}

impl StreamState {
    fn new(cfg: StreamConfig) -> StreamState {
        StreamState {
            cadence_ns: cfg.cadence_ns(),
            ring: cfg.ring(),
            next_tick: AtomicU64::new(cfg.cadence_ns()),
            seq: AtomicU64::new(0),
            cfg,
        }
    }
}

/// Virtual-time NIC arbiter (built only under
/// [`MachineConfig::with_deterministic_nic`]).
///
/// [`Nic::reserve`] grants lane occupancy first-come-first-served in *real*
/// time, so when several PEs contend with overlapping virtual windows the
/// per-PE split of queueing delay depends on host scheduling (the makespan
/// and lane totals stay invariant, but `bench regress` digests compare the
/// split bit-for-bit). The arbiter restores determinism by granting whole
/// reservation sequences in `(virtual start, pe)` order: a request parks,
/// and is granted once it is the minimum parked key and every other PE
/// provably cannot issue an earlier one — its clock is already past `start`
/// (clocks are monotone), it is parked itself (comparable by key), or it is
/// quiescent (blocked in a barrier/`wait_on`, or finished its program).
///
/// The quiescent rule is conservative for barrier waits — a PE blocked in a
/// barrier cannot be released while the granted PE is still parked short of
/// it — and airtight for `wait_on` waits: a write that may satisfy a
/// waiter's predicate is published through [`Machine::apply_and_notify`],
/// which withdraws the waiter's quiescence in the same critical section as
/// the write, so no grant check can ever see "write landed, waiter still
/// quiescent" (which would tie-break reservation order on wake latency).
/// The residual caveat is predicates that turn true *without* a notifying
/// write — e.g. `pe_failed` flips during a fault plan — where wake latency
/// can still tie-break; fault-plan runs should not claim deterministic
/// digests.
struct ArbiterState {
    /// Parked requests, at most one per PE, ordered by `(start, pe, ctx)`:
    /// the context channel id is part of the key, so ops issued on
    /// different per-context NIC channels park as distinct requests (a PE
    /// still parks at most one at a time — its thread is sequential — so
    /// the cross-PE grant order is decided by `(start, pe)` exactly as
    /// before; the ctx component is attribution, not tie-breaking).
    parked: Mutex<BTreeSet<(u64, PeId, u32)>>,
    /// One condvar per PE (all guarded by the `parked` mutex): only the
    /// holder of the *minimum* parked key can ever be granted, so wakes
    /// target exactly that thread instead of broadcasting to every parked
    /// PE — at 1024+ images a shared-condvar broadcast per clock movement
    /// is a thundering herd that dominates wall time.
    cvs: Vec<Condvar>,
    /// PE holding the minimum parked key (`usize::MAX` when none), cached
    /// under the `parked` mutex on every insert/remove so clock movements
    /// can find their wake target with one atomic load, no locking.
    min_pe: AtomicUsize,
    /// Mirror of "is this PE parked", updated under the `parked` mutex:
    /// lets the grant check ask in O(1) instead of scanning the set.
    parked_flags: Vec<AtomicBool>,
    /// PEs that cannot issue a NIC request until externally unblocked.
    quiescent: Vec<AtomicBool>,
    /// PEs whose quiescence comes from `wait_on` (as opposed to a barrier):
    /// a write published through [`Machine::apply_and_notify`] may satisfy
    /// their predicate, so it must withdraw their quiescence in the same
    /// critical section — whereas a barrier waiter can only be released by
    /// the barrier itself and must stay quiescent under incoming writes.
    in_wait_on: Vec<AtomicBool>,
    /// PEs whose program closure has returned — permanently unable to issue
    /// NIC requests. A separate flag (rather than `quiescent`) because a
    /// later barrier round's completing arrival clears every `quiescent`
    /// flag, including one belonging to a PE that died early and already
    /// exited; survivors' parked turns would then wait forever on a thread
    /// that no longer exists.
    finished: Vec<AtomicBool>,
}

/// The simulated machine. Shared (via reference) by every PE thread.
pub struct Machine {
    cfg: MachineConfig,
    pes: Vec<PeState>,
    nics: Vec<Nic>,
    stats: Stats,
    tracer: Tracer,
    metrics: MetricsRegistry,
    sanitizer: Sanitizer,
    poison: Poison,
    global_barrier: ClockBarrier,
    subset_barriers: Mutex<HashMap<Vec<PeId>, Arc<ClockBarrier>>>,
    /// Fault-injection state; `None` unless a non-zero plan was resolved, so
    /// the zero-fault path costs one branch per hook.
    faults: Option<FaultState>,
    /// Live streaming snapshot channel; `None` unless configured, so the
    /// common path costs one branch per clock movement.
    stream: Option<StreamState>,
    /// Virtual-time NIC arbiter; `None` unless `deterministic_nic` is set,
    /// so the common path costs one branch per reservation and clock move.
    arbiter: Option<ArbiterState>,
    /// Bounded worker-pool scheduler; `None` in legacy one-thread-per-PE
    /// mode (no worker limit resolved, or the limit covers every PE), so
    /// the legacy path costs one branch per blocking region.
    sched: Option<SchedState>,
    /// Conduit aggregation override captured on the launching thread at
    /// build time (thread-locals do not propagate to PE threads, so
    /// conduits built on PE threads read it back from here). `Some` beats
    /// both the config choice and the `PGAS_COALESCE` environment default.
    aggregation_forced: Option<bool>,
    /// Resolved payload-checksum switch, captured at build time on the
    /// launching thread (forced > config > `PGAS_CHECKSUM` env). Unlike
    /// aggregation there is no per-context refinement, so the machine
    /// stores the final answer.
    checksums: bool,
}

impl Machine {
    /// Build a machine from a validated configuration.
    pub fn new(cfg: MachineConfig) -> Arc<Machine> {
        cfg.validate().expect("invalid machine configuration");
        let n = cfg.total_pes();
        // Resolution mirrors the sanitizer: thread-forced plan beats explicit
        // config, which beats the PGAS_FAULT_PLAN environment default. A zero
        // plan builds no state at all.
        let faults = crate::fault::forced_plan()
            .or_else(|| cfg.fault_plan())
            .filter(|plan| !plan.is_zero())
            .map(|plan| {
                plan.validate(n, cfg.nodes).expect("invalid fault plan");
                FaultState::new(plan, n)
            });
        // Stream resolution: thread-forced channel beats config. There is no
        // environment default — a stream needs a consumer holding its ring.
        let stream =
            crate::stream::forced_stream().or_else(|| cfg.stream.clone()).map(StreamState::new);
        // Worker-limit resolution mirrors the others: thread-forced limit
        // beats explicit config, which beats the PGAS_WORKERS environment
        // default. Zero or a limit covering every PE is exactly legacy mode,
        // so no scheduler state is built at all.
        let sched = crate::sched::forced_workers()
            .or_else(|| cfg.worker_limit())
            .filter(|&w| w > 0 && w < n)
            .map(|w| SchedState::new(w, n));
        let arbiter = cfg.deterministic_nic.then(|| ArbiterState {
            parked: Mutex::new(BTreeSet::new()),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            min_pe: AtomicUsize::new(usize::MAX),
            parked_flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
            quiescent: (0..n).map(|_| AtomicBool::new(false)).collect(),
            in_wait_on: (0..n).map(|_| AtomicBool::new(false)).collect(),
            finished: (0..n).map(|_| AtomicBool::new(false)).collect(),
        });
        Arc::new(Machine {
            faults,
            stream,
            arbiter,
            sched,
            // Aggregation resolution mirrors the others: capture the thread
            // override here, on the launching thread; conduits combine it
            // with the config/env default via the getters below.
            aggregation_forced: crate::aggregate::forced_aggregation(),
            // Checksum resolution mirrors aggregation, fully resolved here.
            checksums: crate::integrity::forced_checksums()
                .unwrap_or_else(|| cfg.checksums_default()),
            pes: (0..n)
                .map(|_| PeState {
                    heap: Heap::new(cfg.heap_bytes),
                    clock: AtomicU64::new(0),
                    notify: NotifyCell::default(),
                })
                .collect(),
            nics: (0..cfg.nodes).map(|_| Nic::new()).collect(),
            global_barrier: ClockBarrier::new(n),
            subset_barriers: Mutex::new(HashMap::new()),
            stats: Stats::default(),
            // Trace/metrics resolution mirrors the sanitizer and fault plan:
            // thread-forced override beats config, which beats env default.
            tracer: Tracer::new(
                crate::trace::forced_tracing().unwrap_or_else(|| cfg.trace_enabled()),
                n,
            ),
            metrics: MetricsRegistry::new_windowed(
                crate::metrics::forced_metrics().unwrap_or_else(|| cfg.metrics_enabled()),
                n,
                cfg.metrics_window_ns,
            ),
            sanitizer: Sanitizer::new(
                crate::sanitizer::forced_mode().unwrap_or_else(|| cfg.sanitizer_mode()),
                n,
                cfg.heap_bytes,
            ),
            poison: Poison::default(),
            cfg,
        })
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The `with_forced_aggregation` override active on the thread that
    /// built this machine, if any. Beats both the config choice and the
    /// `PGAS_COALESCE` environment default (see `pgas-conduit`, which
    /// performs the final resolution against its own per-context options).
    #[inline]
    pub fn aggregation_forced(&self) -> Option<bool> {
        self.aggregation_forced
    }

    /// The config/environment aggregation default for conduits attached to
    /// this machine ([`MachineConfig::aggregation_default`]).
    #[inline]
    pub fn aggregation_default(&self) -> bool {
        self.cfg.aggregation_default()
    }

    /// Should conduits attached to this machine checksum wire payloads?
    /// Resolved at build time: `with_forced_checksums` beats
    /// [`MachineConfig::with_checksums`], which beats the `PGAS_CHECKSUM`
    /// environment default.
    #[inline]
    pub fn checksums_enabled(&self) -> bool {
        self.checksums
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// Node hosting `pe` (PEs are laid out blockwise across nodes, matching
    /// the usual `mpirun`-style placement).
    #[inline]
    pub fn node_of(&self, pe: PeId) -> usize {
        pe / self.cfg.cores_per_node
    }

    /// Do `a` and `b` share a node (and hence a memory fabric and a NIC)?
    #[inline]
    pub fn same_node(&self, a: PeId, b: PeId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The heap of `pe`.
    #[inline]
    pub fn heap(&self, pe: PeId) -> &Heap {
        &self.pes[pe].heap
    }

    /// NIC of `node`.
    #[inline]
    pub fn nic(&self, node: usize) -> &Nic {
        &self.nics[node]
    }

    /// Machine-wide operation counters.
    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The execution tracer (no-op unless enabled in the configuration).
    #[inline]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The per-op metrics registry (no-op unless enabled).
    #[inline]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The poison flag (set when any PE panics).
    #[inline]
    pub fn poison(&self) -> &Poison {
        &self.poison
    }

    // ---- race & sync sanitizer ------------------------------------------

    /// Is the sanitizer active?
    #[inline]
    pub fn san_on(&self) -> bool {
        self.sanitizer.is_on()
    }

    /// The sanitizer itself (for report draining).
    #[inline]
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// Deliver a sanitizer report: count it, record it, and panic the
    /// calling PE in `Panic` mode.
    fn san_deliver(&self, report: HazardReport) {
        Stats::bump(&self.stats.races);
        let panic_mode = self.sanitizer.mode() == SanitizerMode::Panic;
        let msg = if panic_mode { report.to_string() } else { String::new() };
        self.sanitizer.push(report);
        if panic_mode {
            panic!("{msg}");
        }
    }

    /// Sanitizer hook: a write by `writer` to `owner`'s heap completing at
    /// virtual time `time`. No-op when the sanitizer is off.
    #[allow(clippy::too_many_arguments)]
    pub fn san_record_write(
        &self,
        owner: PeId,
        off: usize,
        len: usize,
        writer: PeId,
        time: u64,
        atomic: bool,
        op: &'static str,
    ) {
        if let Some(r) = self.sanitizer.record_write(owner, off, len, writer, time, atomic, op) {
            self.san_deliver(r);
        }
    }

    /// Sanitizer hook: a read by `reader` of `owner`'s heap.
    pub fn san_check_read(
        &self,
        owner: PeId,
        off: usize,
        len: usize,
        reader: PeId,
        op: &'static str,
    ) {
        let now = self.clock(reader);
        if let Some(r) = self.sanitizer.check_read(owner, off, len, reader, now, op) {
            self.san_deliver(r);
        }
    }

    /// Sanitizer hook: `observer` synchronized with whoever last wrote the
    /// word at `off` in `owner`'s heap (a completed `wait_until` or a
    /// fetching atomic). Creates the happens-before edge reader-side checks
    /// rely on.
    pub fn san_sync_edge(&self, observer: PeId, owner: PeId, off: usize) {
        let Some((w, wtime)) = self.sanitizer.last_writer(owner, off) else {
            return;
        };
        if w == observer {
            return;
        }
        self.sanitizer.join_rows(observer, w);
        // The writer's live clock bounds the completion time of everything
        // it issued *and then quieted* before setting this word; the word's
        // own stamp covers the direct write.
        self.sanitizer.raise(observer, w, wtime.max(self.clock(w)));
    }

    /// Sanitizer hook: a structured hazard found by a higher layer (the
    /// conduit's pending-put checker). Recorded and, in `Panic` mode,
    /// escalated — but *not* counted in `stats.races`, since the conduit
    /// already counts it in `stats.hazards`.
    pub fn san_report(&self, report: HazardReport) {
        if !self.sanitizer.is_on() {
            return;
        }
        let panic_mode = self.sanitizer.mode() == SanitizerMode::Panic;
        let msg = if panic_mode { report.to_string() } else { String::new() };
        self.sanitizer.push(report);
        if panic_mode {
            panic!("{msg}");
        }
    }

    // ---- fault injection -------------------------------------------------

    /// Is a non-zero fault plan active on this machine?
    #[inline]
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Roll one message attempt by `pe` against the plan's transient-fault
    /// probabilities. `None` when no plan is active or the dice came up
    /// clean. Deterministic: stream `pe` advances only on `pe`'s own ops.
    #[inline]
    pub fn fault_draw(&self, pe: PeId) -> Option<FaultKind> {
        self.faults.as_ref()?.draw(pe)
    }

    /// Detection-timeout + backoff delay (with deterministic jitter) for
    /// retry number `attempt` (1-based) by `pe`. Zero when no plan is active.
    pub fn fault_backoff_ns(&self, pe: PeId, attempt: u32) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.backoff_ns(pe, attempt))
    }

    /// Fraction of nominal NIC bandwidth available on `node` for a
    /// reservation beginning at `t_ns` (1.0 unless a degradation window of
    /// the active plan covers that instant).
    #[inline]
    pub fn degradation_factor(&self, node: usize, t_ns: u64) -> f64 {
        match &self.faults {
            Some(f) => f.bandwidth_factor(node, t_ns),
            None => 1.0,
        }
    }

    /// Has `pe` been marked dead by a scheduled failure?
    #[inline]
    pub fn pe_failed(&self, pe: PeId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.is_failed(pe))
    }

    /// The virtual instant at which the active plan schedules `pe` to die,
    /// if any. Unlike [`Self::pe_failed`] — which flips only once the dying
    /// PE's own clock crosses the deadline, i.e. at a real-time point that
    /// depends on host scheduling — this is a pure function of the plan, so
    /// issuers can make *deterministic* dead-target decisions by comparing
    /// it against their own virtual clock.
    #[inline]
    pub fn pe_deadline(&self, pe: PeId) -> Option<u64> {
        self.faults.as_ref().map(|f| f.deadline(pe)).filter(|&d| d != u64::MAX)
    }

    /// Deterministic dead-target predicate: is `pe` scheduled to be dead by
    /// virtual time `t_ns`? True as soon as the issuer's clock passes the
    /// scheduled deadline, whether or not the dying PE's thread has crossed
    /// it yet — the answer depends only on the plan and `t_ns`, never on
    /// host scheduling.
    #[inline]
    pub fn pe_dead_at(&self, pe: PeId, t_ns: u64) -> bool {
        self.pe_deadline(pe).is_some_and(|d| t_ns >= d)
    }

    /// Every PE marked dead so far, ascending.
    pub fn failed_pes(&self) -> Vec<PeId> {
        self.faults.as_ref().map_or_else(Vec::new, |f| f.failed_list())
    }

    /// Has any PE been marked dead?
    pub fn any_pe_failed(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.any_failed())
    }

    /// Mark `pe` dead: count it, log it, detach it from every barrier it
    /// belongs to (pending rounds complete among the survivors), and wake
    /// all waiters so failure-aware predicates re-evaluate.
    #[cold]
    fn fail_pe(&self, pe: PeId, now: u64) {
        let Some(fs) = &self.faults else { return };
        // The subset-barrier lock orders marking against concurrent barrier
        // creation: a group barrier created after this point sees the death
        // and shrinks itself, one created before is shrunk here.
        let subsets = self.subset_barriers.lock();
        if !fs.mark_failed(pe) {
            return;
        }
        Stats::bump(&self.stats.pe_failures);
        self.stats.record_fault(FaultEvent {
            pe,
            op: "pe-failure",
            target: pe,
            kind: "pe-failure",
            attempt: 0,
            delay_ns: 0,
            at_ns: now,
        });
        self.tracer.record(Span::op(pe, SpanKind::Fault, now, now, None, 0));
        self.global_barrier.leave();
        for (group, b) in subsets.iter() {
            if group.binary_search(&pe).is_ok() {
                b.leave();
            }
        }
        drop(subsets);
        for p in &self.pes {
            p.notify.notify();
        }
    }

    /// Check `pe` against its scheduled death instant at clock value `now`.
    #[inline]
    fn poll_failure(&self, pe: PeId, now: u64) {
        if let Some(fs) = &self.faults {
            if now >= fs.deadline(pe) && !fs.is_failed(pe) {
                self.fail_pe(pe, now);
            }
        }
    }

    // ---- live streaming snapshots ---------------------------------------

    /// Is a streaming snapshot channel attached?
    #[inline]
    pub fn stream_active(&self) -> bool {
        self.stream.is_some()
    }

    /// Hook called whenever a PE's clock moves: if the new time crossed the
    /// next cadence boundary, produce one sample. The fast path (no stream,
    /// or boundary not reached) is a branch and a relaxed load.
    #[inline]
    fn stream_tick(&self, now: u64) {
        if let Some(st) = &self.stream {
            if now >= st.next_tick.load(Ordering::Relaxed) {
                self.stream_sample(st, now);
            }
        }
    }

    /// Claim the pending cadence boundary and sample the machine's state.
    /// Sampling only *reads* (clocks, metric counters, last-span peeks, NIC
    /// counters) — no virtual clock moves, which is the contract the
    /// streaming test asserts. Which PE thread wins the claim (and thus the
    /// exact set of samples) depends on host scheduling; the stream is a
    /// live monitoring surface, not a deterministic artifact.
    #[cold]
    fn stream_sample(&self, st: &StreamState, now: u64) {
        let due = st.next_tick.load(Ordering::Relaxed);
        if now < due {
            return;
        }
        // One sample per crossing: the winner moves the boundary past `now`.
        let next = (now / st.cadence_ns + 1) * st.cadence_ns;
        if st.next_tick.compare_exchange(due, next, Ordering::AcqRel, Ordering::Relaxed).is_err() {
            return;
        }
        let sample = StreamSample {
            seq: st.seq.fetch_add(1, Ordering::Relaxed),
            t_ns: now,
            clocks: (0..self.num_pes()).map(|p| self.clock(p)).collect(),
            counters: self.metrics.live_counter_totals(),
            inflight: self.tracer.latest_per_pe(),
            nics: self
                .nics
                .iter()
                .map(|nic| crate::launch::NicSnapshot {
                    messages: nic.messages(),
                    bytes: nic.bytes(),
                    busy_ns: nic.busy_ns(),
                })
                .collect(),
            windows: match st.cfg.window_metric() {
                Some(name) => self.metrics.live_window_series(name),
                None => Vec::new(),
            },
            requests: if st.cfg.requests_enabled() {
                self.tracer.live_requests()
            } else {
                Vec::new()
            },
        };
        // Fan out to push consumers (dashboards, pgas_top's live series)
        // before the ring can evict anything: a slow puller never costs a
        // subscriber a sample.
        st.cfg.notify_consumers(&sample);
        st.ring.push(sample);
    }

    // ---- worker-pool scheduling -----------------------------------------

    /// The resolved worker-pool limit, or `None` in legacy one-thread-per-PE
    /// mode.
    #[inline]
    pub fn worker_limit(&self) -> Option<usize> {
        self.sched.as_ref().map(|s| s.workers())
    }

    /// Launcher hook: block until `pe`'s thread is admitted to a worker
    /// slot (no-op in legacy mode). Keys the ready queue by `pe`'s current
    /// virtual clock.
    #[inline]
    pub(crate) fn sched_acquire(&self, pe: PeId) {
        if let Some(s) = &self.sched {
            s.acquire(pe, self.clock(pe), &self.poison);
        }
    }

    /// Give up `pe`'s worker slot (idempotent; no-op in legacy mode).
    #[inline]
    pub(crate) fn sched_release(&self, pe: PeId) {
        if let Some(s) = &self.sched {
            s.release(pe);
        }
    }

    /// Run `f` — a blocking region on behalf of `pe` (a rendezvous, a
    /// `wait_on`, a parked NIC-arbiter turn) — without holding a worker
    /// slot: the slot is released first and re-acquired afterwards, keyed
    /// by `pe`'s post-wake virtual clock. Without a worker limit this is
    /// exactly `f()`. If `f` unwinds (poison propagation) the slot stays
    /// released; the launcher's finish hook tolerates that via idempotent
    /// release.
    #[inline]
    pub(crate) fn sched_block<R>(&self, pe: PeId, f: impl FnOnce() -> R) -> R {
        let Some(s) = &self.sched else { return f() };
        s.release(pe);
        let out = f();
        s.acquire(pe, self.clock(pe), &self.poison);
        out
    }

    // ---- deterministic NIC arbitration ----------------------------------

    /// Is the virtual-time NIC arbiter active?
    #[inline]
    pub fn deterministic_nic(&self) -> bool {
        self.arbiter.is_some()
    }

    /// Run `f` (a NIC reservation sequence on behalf of `pe`, requesting no
    /// earlier than virtual time `start`) under the arbiter's virtual-time
    /// ordering. Without an arbiter this is exactly `f()`.
    ///
    /// The caller must be the thread running `pe`, and `f` must not block on
    /// other PEs (it only touches NIC lane frontiers).
    pub fn nic_turn<R>(&self, pe: PeId, start: u64, f: impl FnOnce() -> R) -> R {
        self.nic_turn_ctx(pe, 0, start, f)
    }

    /// [`Self::nic_turn`] on a specific per-context NIC channel: `ctx` is
    /// the conduit context id the request belongs to (0 = the default
    /// context). The channel id rides in the parked key, so grants —
    /// and the spans they order — attribute to the issuing context.
    pub fn nic_turn_ctx<R>(&self, pe: PeId, ctx: u32, start: u64, f: impl FnOnce() -> R) -> R {
        let Some(arb) = &self.arbiter else { return f() };
        // A parked turn is a blocking region for the worker pool: while
        // waiting for the grant the PE must not hold a slot — the grant
        // condition polls other PEs' clocks, and those PEs may need a slot
        // to advance them. (The reservation itself only touches NIC lane
        // frontiers, so running it slotless is harmless.)
        self.sched_block(pe, || self.nic_turn_parked(arb, pe, ctx, start, f))
    }

    fn nic_turn_parked<R>(
        &self,
        arb: &ArbiterState,
        pe: PeId,
        ctx: u32,
        start: u64,
        f: impl FnOnce() -> R,
    ) -> R {
        let key = (start, pe, ctx);
        let mut parked = arb.parked.lock();
        let inserted = parked.insert(key);
        debug_assert!(inserted, "a PE parks at most one NIC request at a time");
        arb.parked_flags[pe].store(true, Ordering::Release);
        Self::arb_cache_min(arb, &parked);
        // Parking makes this PE "comparable by key", which can complete the
        // current minimum's grant condition — wake it (if it isn't us).
        let min = *parked.iter().next().expect("own key is parked");
        if min != key {
            arb.cvs[min.1].notify_all();
        }
        loop {
            if self.poison.is_poisoned() {
                parked.remove(&key);
                arb.parked_flags[pe].store(false, Ordering::Release);
                Self::arb_cache_min(arb, &parked);
                drop(parked);
                self.arb_wake_min(arb);
                self.poison.check(); // panics
                unreachable!("poison.check() panics when poisoned");
            }
            let min = *parked.iter().next().expect("own key is parked");
            if min == key && self.arb_grantable(arb, start, pe) {
                break;
            }
            // Timed wait on this PE's own condvar: a missed notification
            // (or a PE advancing past `start` without ever touching the
            // arbiter) can never hang us. Only the minimum key polls
            // eagerly — its grant condition reads other PEs' clocks, which
            // can move without an arbiter touch; everyone else is woken by
            // name on becoming the minimum and polls only as a backstop.
            let tick =
                if min == key { crate::sync::WAIT_TICK_MIN } else { crate::sync::WAIT_TICK_IDLE };
            arb.cvs[pe].wait_for(&mut parked, tick);
        }
        // Keep the key parked while reserving: it blocks every later key, so
        // grants are mutually exclusive without a separate lock.
        drop(parked);
        let out = f();
        let mut parked = arb.parked.lock();
        parked.remove(&key);
        arb.parked_flags[pe].store(false, Ordering::Release);
        Self::arb_cache_min(arb, &parked);
        drop(parked);
        self.arb_wake_min(arb);
        out
    }

    /// Refresh the cached minimum-key holder. Call with the `parked` mutex
    /// held, after every insert/remove.
    fn arb_cache_min(arb: &ArbiterState, parked: &BTreeSet<(u64, PeId, u32)>) {
        let min = parked.iter().next().map(|&(_, p, _)| p).unwrap_or(usize::MAX);
        arb.min_pe.store(min, Ordering::Release);
    }

    /// Wake the holder of the minimum parked key, if any. Lock-free — the
    /// target is the cached `min_pe` — and sufficient: only the minimum can
    /// be granted, every other parked PE sleeps until it becomes the
    /// minimum (a stale read is repaired by the next wake or, worst case,
    /// the target's own backstop-tick re-check).
    #[inline]
    fn arb_wake_min(&self, arb: &ArbiterState) {
        let min = arb.min_pe.load(Ordering::Acquire);
        if min != usize::MAX {
            arb.cvs[min].notify_all();
        }
    }

    /// Grant condition for a parked minimum `(start, pe)`: every other PE is
    /// quiescent, parked itself (its key is larger — ours is the minimum), or
    /// already strictly past `start` (clocks are monotone, so it can never
    /// issue an earlier request).
    fn arb_grantable(&self, arb: &ArbiterState, start: u64, pe: PeId) -> bool {
        (0..self.num_pes()).all(|q| {
            q == pe
                || arb.finished[q].load(Ordering::Acquire)
                || arb.quiescent[q].load(Ordering::Acquire)
                || arb.parked_flags[q].load(Ordering::Acquire)
                || self.clock(q) > start
        })
    }

    /// Mark `pe` unable to issue NIC requests until externally unblocked
    /// (entering a barrier or `wait_on`, or finishing its program closure).
    /// No-op without an arbiter.
    #[inline]
    pub(crate) fn arb_set_quiescent(&self, pe: PeId, quiescent: bool) {
        if let Some(arb) = &self.arbiter {
            arb.quiescent[pe].store(quiescent, Ordering::Release);
            if quiescent {
                self.arb_wake_min(arb);
            }
        }
    }

    /// Wake the arbiter's minimum-key holder after a clock movement (its
    /// grant check reads other PEs' clocks). One branch when no arbiter,
    /// one atomic load when nothing is parked.
    #[inline]
    fn arb_clock_moved(&self) {
        if let Some(arb) = &self.arbiter {
            self.arb_wake_min(arb);
        }
    }

    /// Mark `pe`'s program closure finished (launcher hook): permanently
    /// quiescent for NIC arbitration, and its worker slot (if still held —
    /// a panic may have unwound out of a slotless blocking region) freed.
    pub(crate) fn pe_finished(&self, pe: PeId) {
        if let Some(arb) = &self.arbiter {
            arb.finished[pe].store(true, Ordering::Release);
        }
        self.arb_set_quiescent(pe, true);
        self.sched_release(pe);
    }

    // ---- virtual clocks ------------------------------------------------

    /// Current virtual time of `pe`, ns.
    #[inline]
    pub fn clock(&self, pe: PeId) -> u64 {
        self.pes[pe].clock.load(Ordering::Acquire)
    }

    /// Advance `pe`'s clock by `ns` (fractional costs round half-up) and
    /// return the new time. Must only be called from the thread running `pe`.
    #[inline]
    pub fn advance(&self, pe: PeId, ns: f64) -> u64 {
        debug_assert!(ns >= 0.0, "cannot advance a clock by a negative amount");
        let prev = self.pes[pe].clock.load(Ordering::Acquire);
        let next = prev + ns.round() as u64;
        self.pes[pe].clock.store(next, Ordering::Release);
        self.poll_failure(pe, next);
        self.stream_tick(next);
        self.arb_clock_moved();
        next
    }

    /// Set `pe`'s clock to `max(current, t)` and return the new time.
    #[inline]
    pub fn lift_clock(&self, pe: PeId, t: u64) -> u64 {
        let prev = self.pes[pe].clock.load(Ordering::Acquire);
        let next = prev.max(t);
        self.pes[pe].clock.store(next, Ordering::Release);
        self.poll_failure(pe, next);
        self.stream_tick(next);
        self.arb_clock_moved();
        next
    }

    // ---- notification / waiting ----------------------------------------

    /// Wake anything waiting on `pe`'s memory (call after remotely writing
    /// that PE's heap).
    #[inline]
    pub fn notify_pe(&self, pe: PeId) {
        self.pes[pe].notify.notify();
    }

    /// Apply `f` — a write to `pe`'s heap that `wait_on` predicates may
    /// observe — and wake `pe`'s waiters, as one critical section.
    ///
    /// Under the deterministic NIC arbiter this additionally withdraws
    /// `pe`'s `wait_on` quiescence in the same section: the moment the write
    /// is observable, `pe` no longer counts as "provably unable to issue a
    /// NIC request", closing the wake-latency window in which an arbiter
    /// grant could order reservations by host scheduling. Without an arbiter
    /// this is just `f` followed by [`Self::notify_pe`] under the notify
    /// lock.
    pub fn apply_and_notify<R>(&self, pe: PeId, f: impl FnOnce() -> R) -> R {
        self.pes[pe].notify.notify_applying(|| {
            let out = f();
            if let Some(arb) = &self.arbiter {
                if arb.in_wait_on[pe].load(Ordering::Acquire) {
                    arb.quiescent[pe].store(false, Ordering::Release);
                }
            }
            out
        })
    }

    /// Block the calling thread (which must be running `pe`) until `pred()`
    /// holds. Poison-aware; periodically re-checks. A blocking region for
    /// the worker pool: the slot is yielded for the duration of the wait
    /// and re-acquired at the post-wake clock.
    pub fn wait_on(&self, pe: PeId, pred: impl FnMut() -> bool) {
        self.sched_block(pe, move || self.wait_on_slotless(pe, pred));
    }

    fn wait_on_slotless(&self, pe: PeId, pred: impl FnMut() -> bool) {
        let Some(arb) = &self.arbiter else {
            self.pes[pe].notify.wait_until(&self.poison, pred);
            return;
        };
        // Quiescence is asserted under the notify lock right before every
        // sleep and withdrawn there on exit, pairing with writers publishing
        // through `apply_and_notify`: a waiter is flagged quiescent only
        // while no satisfying write has been observed.
        self.pes[pe].notify.wait_until_guarded(
            &self.poison,
            pred,
            || {
                arb.in_wait_on[pe].store(true, Ordering::Release);
                arb.quiescent[pe].store(true, Ordering::Release);
                self.arb_wake_min(arb);
            },
            || {
                arb.quiescent[pe].store(false, Ordering::Release);
                arb.in_wait_on[pe].store(false, Ordering::Release);
            },
        );
    }

    /// Interrupt all waiting threads so they observe poison.
    pub fn interrupt_all(&self) {
        self.global_barrier.interrupt();
        for pe in &self.pes {
            pe.notify.interrupt();
        }
        for (_, b) in self.subset_barriers.lock().iter() {
            b.interrupt();
        }
        if let Some(arb) = &self.arbiter {
            // Poison propagation must reach every parked PE, not just the
            // minimum-key holder.
            for cv in &arb.cvs {
                cv.notify_all();
            }
        }
        if let Some(s) = &self.sched {
            s.interrupt();
        }
    }

    // ---- barriers -------------------------------------------------------

    /// Rendezvous all PEs; afterwards every clock equals
    /// `max(arrival clocks) + extra_ns`. Every PE must pass the same
    /// `extra_ns` (the communication layer computes it from the barrier
    /// algorithm it models). Returns the new clock.
    pub fn barrier_all(&self, pe: PeId, extra_ns: f64) -> u64 {
        self.poll_failure(pe, self.clock(pe));
        if self.pe_failed(pe) {
            // A dead PE must not rendezvous: it already left the group.
            return self.clock(pe);
        }
        Stats::bump(&self.stats.barriers);
        self.arb_set_quiescent(pe, true);
        // The completing arrival clears every participant's quiescent flag
        // *before* the waiters wake: a released-but-unscheduled PE must not
        // look quiescent to the NIC arbiter, or reservations could be granted
        // out of virtual-time order.
        let max = self.sched_block(pe, || {
            self.global_barrier.arrive_with(self.clock(pe), &self.poison, || {
                for q in 0..self.num_pes() {
                    self.arb_set_quiescent(q, false);
                }
            })
        });
        let t = max + extra_ns.round() as u64;
        self.pes[pe].clock.store(t, Ordering::Release);
        self.arb_set_quiescent(pe, false);
        self.sanitizer.barrier_join(pe, 0..self.num_pes(), t);
        self.stream_tick(t);
        self.arb_clock_moved();
        t
    }

    /// Rendezvous a subset of PEs (each member passes the same sorted
    /// `group`, which must contain `pe`). Clock rule as in `barrier_all`.
    pub fn barrier_group(&self, pe: PeId, group: &[PeId], extra_ns: f64) -> u64 {
        debug_assert!(group.windows(2).all(|w| w[0] < w[1]), "group must be sorted and unique");
        debug_assert!(group.contains(&pe), "barrier group must contain the calling PE");
        self.poll_failure(pe, self.clock(pe));
        if self.pe_failed(pe) {
            return self.clock(pe);
        }
        Stats::bump(&self.stats.barriers);
        let barrier = {
            let mut map = self.subset_barriers.lock();
            map.entry(group.to_vec())
                .or_insert_with(|| {
                    let b = ClockBarrier::new(group.len());
                    // Members already dead at creation never arrive.
                    if let Some(fs) = &self.faults {
                        for &g in group {
                            if fs.is_failed(g) {
                                b.leave();
                            }
                        }
                    }
                    Arc::new(b)
                })
                .clone()
        };
        self.arb_set_quiescent(pe, true);
        // See barrier_all: release clears the group's quiescent flags.
        let max = self.sched_block(pe, || {
            barrier.arrive_with(self.clock(pe), &self.poison, || {
                for &q in group {
                    self.arb_set_quiescent(q, false);
                }
            })
        });
        let t = max + extra_ns.round() as u64;
        self.pes[pe].clock.store(t, Ordering::Release);
        self.arb_set_quiescent(pe, false);
        self.sanitizer.barrier_join(pe, group.iter().copied(), t);
        self.stream_tick(t);
        self.arb_clock_moved();
        t
    }

    // ---- compute model ---------------------------------------------------

    /// Charge `flops` floating-point operations of local compute to `pe`.
    pub fn compute_flops(&self, pe: PeId, flops: f64) -> u64 {
        self.charge_compute(pe, flops / self.cfg.compute.core_gflops)
    }

    /// Charge `n` generic local operations (loop iterations, hash probes...).
    pub fn compute_ops(&self, pe: PeId, n: u64) -> u64 {
        self.charge_compute(pe, n as f64 * self.cfg.compute.local_op_ns)
    }

    fn charge_compute(&self, pe: PeId, ns: f64) -> u64 {
        let begin = self.clock(pe);
        let end = self.advance(pe, ns);
        if self.tracer.enabled() && end > begin {
            self.tracer.record(Span::op(pe, SpanKind::Compute, begin, end, None, 0));
        }
        if self.metrics.enabled() {
            self.metrics.observe(pe, "compute_ns", None, end - begin);
        }
        end
    }
}

/// Handle given to the SPMD closure: one per PE thread.
///
/// `Pe` is `Copy`-cheap to pass around; all state lives in the [`Machine`].
#[derive(Clone, Copy)]
pub struct Pe<'m> {
    id: PeId,
    machine: &'m Machine,
}

impl<'m> Pe<'m> {
    pub(crate) fn new(id: PeId, machine: &'m Machine) -> Self {
        Pe { id, machine }
    }

    /// This PE's index, `0..n`.
    #[inline]
    pub fn id(&self) -> PeId {
        self.id
    }

    /// Total PEs in the job.
    #[inline]
    pub fn n(&self) -> usize {
        self.machine.num_pes()
    }

    /// The machine this PE runs on.
    #[inline]
    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    /// Node hosting this PE.
    #[inline]
    pub fn node(&self) -> usize {
        self.machine.node_of(self.id)
    }

    /// Current virtual time, ns.
    #[inline]
    pub fn now(&self) -> u64 {
        self.machine.clock(self.id)
    }

    /// Advance this PE's virtual clock by `ns`.
    #[inline]
    pub fn advance(&self, ns: f64) -> u64 {
        self.machine.advance(self.id, ns)
    }

    /// Charge local floating-point work to the clock.
    #[inline]
    pub fn compute_flops(&self, flops: f64) -> u64 {
        self.machine.compute_flops(self.id, flops)
    }

    /// Charge generic local operations to the clock.
    #[inline]
    pub fn compute_ops(&self, n: u64) -> u64 {
        self.machine.compute_ops(self.id, n)
    }
}

impl std::fmt::Debug for Pe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pe({}/{})", self.id, self.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::generic_smp;

    #[test]
    fn nic_turn_is_a_passthrough_without_the_arbiter() {
        let m = Machine::new(generic_smp(2));
        assert!(!m.deterministic_nic());
        assert_eq!(m.nic_turn(0, 50, || 7), 7);
    }

    #[test]
    fn nic_arbiter_grants_tied_reservations_in_pe_order() {
        // Four PEs race for the same lane with identical virtual start
        // times: real-thread arrival order must not matter — slots go out
        // strictly by PE id.
        let out = crate::launch::run(generic_smp(4).with_deterministic_nic(), |pe| {
            let m = pe.machine();
            m.nic_turn(pe.id(), 100, || m.nic(0).reserve_tx(100, 10, 1).begin)
        });
        assert_eq!(out.results, vec![100, 110, 120, 130]);
    }

    #[test]
    fn nic_arbiter_grants_by_virtual_start_before_pe_id() {
        // PE 0 asks for the lane at t=200, PE 1 at t=100: the later virtual
        // request loses even if its thread gets there first.
        let out = crate::launch::run(generic_smp(2).with_deterministic_nic(), |pe| {
            let m = pe.machine();
            let start = if pe.id() == 0 { 200 } else { 100 };
            m.nic_turn(pe.id(), start, || m.nic(0).reserve_tx(start, 10, 1).begin)
        });
        assert_eq!(out.results, vec![200, 100]);
    }

    #[test]
    fn worker_limit_resolution() {
        // Explicit choices are env-independent: with_workers beats the
        // PGAS_WORKERS default (the test-pooled CI job) in every case.
        let m = Machine::new(generic_smp(4).with_workers(2));
        assert_eq!(m.worker_limit(), Some(2));
        let m = Machine::new(generic_smp(4).with_workers(0));
        assert_eq!(m.worker_limit(), None, "explicit 0 pins legacy mode");
        let m = Machine::new(generic_smp(4).with_workers(4));
        assert_eq!(m.worker_limit(), None, "a pool covering every PE is legacy mode");
        crate::sched::with_forced_workers(2, || {
            let m = Machine::new(generic_smp(4).with_workers(0));
            assert_eq!(m.worker_limit(), Some(2), "forced override beats explicit config");
        });
        crate::sched::with_forced_workers(0, || {
            let m = Machine::new(generic_smp(4).with_workers(2));
            assert_eq!(m.worker_limit(), None, "forced 0 pins legacy over config");
        });
    }

    #[test]
    fn pooled_scheduler_outcomes_match_legacy() {
        // A contended arbiter workload (tied NIC reservations, barriers,
        // wait_on handoffs) must produce bit-identical outcomes for every
        // worker count — the tentpole invariant.
        let run_with = |w: usize| {
            crate::launch::run(generic_smp(4).with_deterministic_nic().with_workers(w), |pe| {
                let m = pe.machine();
                let me = pe.id();
                let r = m.nic_turn(me, 100, || m.nic(0).reserve_tx(100, 10, 1).end);
                m.lift_clock(me, r);
                // Ring handoff through wait_on: PE k waits for word k, then
                // releases PE k+1.
                if me == 0 {
                    m.apply_and_notify(1, || {
                        m.heap(1).atomic64(0).store(1, std::sync::atomic::Ordering::Release)
                    });
                } else {
                    m.wait_on(me, || {
                        m.heap(me).atomic64(0).load(std::sync::atomic::Ordering::Acquire) == 1
                    });
                    if me + 1 < pe.n() {
                        m.apply_and_notify(me + 1, || {
                            m.heap(me + 1)
                                .atomic64(0)
                                .store(1, std::sync::atomic::Ordering::Release)
                        });
                    }
                }
                m.barrier_all(me, 5.0)
            })
        };
        let legacy = run_with(0);
        for w in [1, 2, 3] {
            let pooled = run_with(w);
            assert_eq!(pooled.results, legacy.results, "worker limit {w}");
            assert_eq!(pooled.clocks, legacy.clocks, "worker limit {w}");
            assert_eq!(pooled.nics, legacy.nics, "worker limit {w}");
        }
    }

    #[test]
    fn node_layout_is_blockwise() {
        let m = Machine::new(crate::platforms::stampede(4, 16));
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(15), 0);
        assert_eq!(m.node_of(16), 1);
        assert_eq!(m.node_of(63), 3);
        assert!(m.same_node(0, 15));
        assert!(!m.same_node(15, 16));
    }

    #[test]
    fn clock_advance_and_lift() {
        let m = Machine::new(generic_smp(2));
        assert_eq!(m.clock(0), 0);
        assert_eq!(m.advance(0, 10.4), 10);
        assert_eq!(m.advance(0, 10.6), 21);
        assert_eq!(m.lift_clock(0, 5), 21, "lift below current is a no-op");
        assert_eq!(m.lift_clock(0, 100), 100);
        assert_eq!(m.clock(1), 0, "other PEs unaffected");
    }

    #[test]
    fn compute_charges_by_gflops() {
        let m = Machine::new(generic_smp(1)); // 2.5 GF/s core
        m.compute_flops(0, 2500.0);
        assert_eq!(m.clock(0), 1000);
    }

    #[test]
    fn fault_hooks_are_inert_without_a_plan() {
        // Force the no-plan state: a PGAS_FAULT_PLAN env default (the CI
        // test-faulted job) would otherwise reach this machine.
        crate::fault::with_forced_plan(crate::fault::FaultPlan::none(), || {
            let m = Machine::new(generic_smp(2));
            assert!(!m.faults_active());
            assert!(m.fault_plan().is_none());
            assert!(m.fault_draw(0).is_none());
            assert_eq!(m.fault_backoff_ns(0, 1), 0);
            assert_eq!(m.degradation_factor(0, 12345), 1.0);
            assert!(!m.pe_failed(0));
            assert!(m.failed_pes().is_empty());
            assert!(!m.any_pe_failed());
        });
    }

    #[test]
    fn zero_plan_builds_no_fault_state() {
        use crate::fault::FaultPlan;
        let m = Machine::new(generic_smp(2).with_faults(FaultPlan::none()));
        assert!(!m.faults_active());
    }

    #[test]
    fn scheduled_failure_trips_when_clock_crosses_deadline() {
        use crate::fault::FaultPlan;
        let m = Machine::new(generic_smp(2).with_faults(FaultPlan::new(1).with_pe_failure(1, 100)));
        assert!(m.faults_active());
        m.advance(1, 99.0);
        assert!(!m.pe_failed(1), "deadline not reached yet");
        m.advance(1, 1.0);
        assert!(m.pe_failed(1));
        assert_eq!(m.failed_pes(), vec![1]);
        assert_eq!(m.stats().snapshot().pe_failures, 1);
        let events = m.stats().drain_faults();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "pe-failure");
        assert_eq!(events[0].at_ns, 100);
        // The survivor's barrier completes alone; the dead PE's is a no-op.
        assert_eq!(m.barrier_all(0, 5.0), m.clock(0));
        let dead_clock = m.clock(1);
        assert_eq!(m.barrier_all(1, 5.0), dead_clock, "dead PE does not rendezvous");
    }

    #[test]
    fn stream_samples_at_cadence_boundaries_without_moving_clocks() {
        use crate::stream::StreamConfig;
        let sc = StreamConfig::new(100, 16);
        let ring = sc.ring();
        let m = Machine::new(generic_smp(2).with_stream(sc));
        assert!(m.stream_active());
        // 7 × 30 ns: the 100 ns boundary is crossed at t=120 (sample, next
        // due tick 200) and the 200 ns boundary at t=210 (second sample).
        for _ in 0..7 {
            m.advance(0, 30.0);
        }
        assert_eq!(m.clock(0), 210, "sampling moved no clock");
        assert_eq!(m.clock(1), 0);
        let samples = ring.drain();
        assert_eq!(samples.len(), 2, "one sample per crossed cadence boundary");
        assert_eq!(samples[0].seq, 0);
        assert_eq!(samples[0].t_ns, 120);
        assert_eq!(samples[0].clocks, vec![120, 0]);
        assert_eq!(samples[1].t_ns, 210);
        // Untraced, metric-less machine: samples carry clocks + NICs only.
        assert!(samples[0].counters.is_empty());
        assert!(samples[0].inflight.is_empty());
        assert_eq!(samples[0].nics.len(), 1);
    }

    #[test]
    fn heaps_are_independent() {
        let m = Machine::new(generic_smp(2));
        m.heap(0).write_bytes(0, b"abcdefgh");
        let mut out = [0u8; 8];
        m.heap(1).read_bytes(0, &mut out);
        assert_eq!(out, [0u8; 8]);
    }
}
