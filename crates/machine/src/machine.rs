//! The machine proper: PE state, clocks, heaps, NICs, barriers.

use crate::config::MachineConfig;
use crate::fault::{FaultKind, FaultPlan, FaultState};
use crate::heap::Heap;
use crate::metrics::MetricsRegistry;
use crate::nic::Nic;
use crate::sanitizer::{HazardReport, Sanitizer, SanitizerMode};
use crate::stats::{FaultEvent, Stats};
use crate::sync::{ClockBarrier, NotifyCell, Poison};
use crate::trace::{Span, SpanKind, Tracer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Index of a processing element, `0..total_pes`.
pub type PeId = usize;

/// Hard cap on PE count (the CAF lock pointer encoding reserves 20 bits for
/// the image index, see the paper §IV-D; we stay within it).
pub const MAX_PES: usize = 1 << 20;

/// State owned by one PE.
struct PeState {
    heap: Heap,
    clock: AtomicU64,
    notify: NotifyCell,
}

/// The simulated machine. Shared (via reference) by every PE thread.
pub struct Machine {
    cfg: MachineConfig,
    pes: Vec<PeState>,
    nics: Vec<Nic>,
    stats: Stats,
    tracer: Tracer,
    metrics: MetricsRegistry,
    sanitizer: Sanitizer,
    poison: Poison,
    global_barrier: ClockBarrier,
    subset_barriers: Mutex<HashMap<Vec<PeId>, Arc<ClockBarrier>>>,
    /// Fault-injection state; `None` unless a non-zero plan was resolved, so
    /// the zero-fault path costs one branch per hook.
    faults: Option<FaultState>,
}

impl Machine {
    /// Build a machine from a validated configuration.
    pub fn new(cfg: MachineConfig) -> Arc<Machine> {
        cfg.validate().expect("invalid machine configuration");
        let n = cfg.total_pes();
        // Resolution mirrors the sanitizer: thread-forced plan beats explicit
        // config, which beats the PGAS_FAULT_PLAN environment default. A zero
        // plan builds no state at all.
        let faults = crate::fault::forced_plan()
            .or_else(|| cfg.fault_plan())
            .filter(|plan| !plan.is_zero())
            .map(|plan| {
                plan.validate(n, cfg.nodes).expect("invalid fault plan");
                FaultState::new(plan, n)
            });
        Arc::new(Machine {
            faults,
            pes: (0..n)
                .map(|_| PeState {
                    heap: Heap::new(cfg.heap_bytes),
                    clock: AtomicU64::new(0),
                    notify: NotifyCell::default(),
                })
                .collect(),
            nics: (0..cfg.nodes).map(|_| Nic::new()).collect(),
            global_barrier: ClockBarrier::new(n),
            subset_barriers: Mutex::new(HashMap::new()),
            stats: Stats::default(),
            // Trace/metrics resolution mirrors the sanitizer and fault plan:
            // thread-forced override beats config, which beats env default.
            tracer: Tracer::new(
                crate::trace::forced_tracing().unwrap_or_else(|| cfg.trace_enabled()),
                n,
            ),
            metrics: MetricsRegistry::new(
                crate::metrics::forced_metrics().unwrap_or_else(|| cfg.metrics_enabled()),
                n,
            ),
            sanitizer: Sanitizer::new(
                crate::sanitizer::forced_mode().unwrap_or_else(|| cfg.sanitizer_mode()),
                n,
                cfg.heap_bytes,
            ),
            poison: Poison::default(),
            cfg,
        })
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// Node hosting `pe` (PEs are laid out blockwise across nodes, matching
    /// the usual `mpirun`-style placement).
    #[inline]
    pub fn node_of(&self, pe: PeId) -> usize {
        pe / self.cfg.cores_per_node
    }

    /// Do `a` and `b` share a node (and hence a memory fabric and a NIC)?
    #[inline]
    pub fn same_node(&self, a: PeId, b: PeId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The heap of `pe`.
    #[inline]
    pub fn heap(&self, pe: PeId) -> &Heap {
        &self.pes[pe].heap
    }

    /// NIC of `node`.
    #[inline]
    pub fn nic(&self, node: usize) -> &Nic {
        &self.nics[node]
    }

    /// Machine-wide operation counters.
    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The execution tracer (no-op unless enabled in the configuration).
    #[inline]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The per-op metrics registry (no-op unless enabled).
    #[inline]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The poison flag (set when any PE panics).
    #[inline]
    pub fn poison(&self) -> &Poison {
        &self.poison
    }

    // ---- race & sync sanitizer ------------------------------------------

    /// Is the sanitizer active?
    #[inline]
    pub fn san_on(&self) -> bool {
        self.sanitizer.is_on()
    }

    /// The sanitizer itself (for report draining).
    #[inline]
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// Deliver a sanitizer report: count it, record it, and panic the
    /// calling PE in `Panic` mode.
    fn san_deliver(&self, report: HazardReport) {
        Stats::bump(&self.stats.races);
        let panic_mode = self.sanitizer.mode() == SanitizerMode::Panic;
        let msg = if panic_mode { report.to_string() } else { String::new() };
        self.sanitizer.push(report);
        if panic_mode {
            panic!("{msg}");
        }
    }

    /// Sanitizer hook: a write by `writer` to `owner`'s heap completing at
    /// virtual time `time`. No-op when the sanitizer is off.
    #[allow(clippy::too_many_arguments)]
    pub fn san_record_write(
        &self,
        owner: PeId,
        off: usize,
        len: usize,
        writer: PeId,
        time: u64,
        atomic: bool,
        op: &'static str,
    ) {
        if let Some(r) = self.sanitizer.record_write(owner, off, len, writer, time, atomic, op) {
            self.san_deliver(r);
        }
    }

    /// Sanitizer hook: a read by `reader` of `owner`'s heap.
    pub fn san_check_read(
        &self,
        owner: PeId,
        off: usize,
        len: usize,
        reader: PeId,
        op: &'static str,
    ) {
        let now = self.clock(reader);
        if let Some(r) = self.sanitizer.check_read(owner, off, len, reader, now, op) {
            self.san_deliver(r);
        }
    }

    /// Sanitizer hook: `observer` synchronized with whoever last wrote the
    /// word at `off` in `owner`'s heap (a completed `wait_until` or a
    /// fetching atomic). Creates the happens-before edge reader-side checks
    /// rely on.
    pub fn san_sync_edge(&self, observer: PeId, owner: PeId, off: usize) {
        let Some((w, wtime)) = self.sanitizer.last_writer(owner, off) else {
            return;
        };
        if w == observer {
            return;
        }
        self.sanitizer.join_rows(observer, w);
        // The writer's live clock bounds the completion time of everything
        // it issued *and then quieted* before setting this word; the word's
        // own stamp covers the direct write.
        self.sanitizer.raise(observer, w, wtime.max(self.clock(w)));
    }

    /// Sanitizer hook: a structured hazard found by a higher layer (the
    /// conduit's pending-put checker). Recorded and, in `Panic` mode,
    /// escalated — but *not* counted in `stats.races`, since the conduit
    /// already counts it in `stats.hazards`.
    pub fn san_report(&self, report: HazardReport) {
        if !self.sanitizer.is_on() {
            return;
        }
        let panic_mode = self.sanitizer.mode() == SanitizerMode::Panic;
        let msg = if panic_mode { report.to_string() } else { String::new() };
        self.sanitizer.push(report);
        if panic_mode {
            panic!("{msg}");
        }
    }

    // ---- fault injection -------------------------------------------------

    /// Is a non-zero fault plan active on this machine?
    #[inline]
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Roll one message attempt by `pe` against the plan's transient-fault
    /// probabilities. `None` when no plan is active or the dice came up
    /// clean. Deterministic: stream `pe` advances only on `pe`'s own ops.
    #[inline]
    pub fn fault_draw(&self, pe: PeId) -> Option<FaultKind> {
        self.faults.as_ref()?.draw(pe)
    }

    /// Detection-timeout + backoff delay (with deterministic jitter) for
    /// retry number `attempt` (1-based) by `pe`. Zero when no plan is active.
    pub fn fault_backoff_ns(&self, pe: PeId, attempt: u32) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.backoff_ns(pe, attempt))
    }

    /// Fraction of nominal NIC bandwidth available on `node` for a
    /// reservation beginning at `t_ns` (1.0 unless a degradation window of
    /// the active plan covers that instant).
    #[inline]
    pub fn degradation_factor(&self, node: usize, t_ns: u64) -> f64 {
        match &self.faults {
            Some(f) => f.bandwidth_factor(node, t_ns),
            None => 1.0,
        }
    }

    /// Has `pe` been marked dead by a scheduled failure?
    #[inline]
    pub fn pe_failed(&self, pe: PeId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.is_failed(pe))
    }

    /// Every PE marked dead so far, ascending.
    pub fn failed_pes(&self) -> Vec<PeId> {
        self.faults.as_ref().map_or_else(Vec::new, |f| f.failed_list())
    }

    /// Has any PE been marked dead?
    pub fn any_pe_failed(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.any_failed())
    }

    /// Mark `pe` dead: count it, log it, detach it from every barrier it
    /// belongs to (pending rounds complete among the survivors), and wake
    /// all waiters so failure-aware predicates re-evaluate.
    #[cold]
    fn fail_pe(&self, pe: PeId, now: u64) {
        let Some(fs) = &self.faults else { return };
        // The subset-barrier lock orders marking against concurrent barrier
        // creation: a group barrier created after this point sees the death
        // and shrinks itself, one created before is shrunk here.
        let subsets = self.subset_barriers.lock();
        if !fs.mark_failed(pe) {
            return;
        }
        Stats::bump(&self.stats.pe_failures);
        self.stats.record_fault(FaultEvent {
            pe,
            op: "pe-failure",
            target: pe,
            kind: "pe-failure",
            attempt: 0,
            delay_ns: 0,
            at_ns: now,
        });
        self.tracer.record(Span::op(pe, SpanKind::Fault, now, now, None, 0));
        self.global_barrier.leave();
        for (group, b) in subsets.iter() {
            if group.binary_search(&pe).is_ok() {
                b.leave();
            }
        }
        drop(subsets);
        for p in &self.pes {
            p.notify.notify();
        }
    }

    /// Check `pe` against its scheduled death instant at clock value `now`.
    #[inline]
    fn poll_failure(&self, pe: PeId, now: u64) {
        if let Some(fs) = &self.faults {
            if now >= fs.deadline(pe) && !fs.is_failed(pe) {
                self.fail_pe(pe, now);
            }
        }
    }

    // ---- virtual clocks ------------------------------------------------

    /// Current virtual time of `pe`, ns.
    #[inline]
    pub fn clock(&self, pe: PeId) -> u64 {
        self.pes[pe].clock.load(Ordering::Acquire)
    }

    /// Advance `pe`'s clock by `ns` (fractional costs round half-up) and
    /// return the new time. Must only be called from the thread running `pe`.
    #[inline]
    pub fn advance(&self, pe: PeId, ns: f64) -> u64 {
        debug_assert!(ns >= 0.0, "cannot advance a clock by a negative amount");
        let prev = self.pes[pe].clock.load(Ordering::Acquire);
        let next = prev + ns.round() as u64;
        self.pes[pe].clock.store(next, Ordering::Release);
        self.poll_failure(pe, next);
        next
    }

    /// Set `pe`'s clock to `max(current, t)` and return the new time.
    #[inline]
    pub fn lift_clock(&self, pe: PeId, t: u64) -> u64 {
        let prev = self.pes[pe].clock.load(Ordering::Acquire);
        let next = prev.max(t);
        self.pes[pe].clock.store(next, Ordering::Release);
        self.poll_failure(pe, next);
        next
    }

    // ---- notification / waiting ----------------------------------------

    /// Wake anything waiting on `pe`'s memory (call after remotely writing
    /// that PE's heap).
    #[inline]
    pub fn notify_pe(&self, pe: PeId) {
        self.pes[pe].notify.notify();
    }

    /// Block the calling thread (which must be running `pe`) until `pred()`
    /// holds. Poison-aware; periodically re-checks.
    pub fn wait_on(&self, pe: PeId, pred: impl FnMut() -> bool) {
        self.pes[pe].notify.wait_until(&self.poison, pred);
    }

    /// Interrupt all waiting threads so they observe poison.
    pub fn interrupt_all(&self) {
        self.global_barrier.interrupt();
        for pe in &self.pes {
            pe.notify.interrupt();
        }
        for (_, b) in self.subset_barriers.lock().iter() {
            b.interrupt();
        }
    }

    // ---- barriers -------------------------------------------------------

    /// Rendezvous all PEs; afterwards every clock equals
    /// `max(arrival clocks) + extra_ns`. Every PE must pass the same
    /// `extra_ns` (the communication layer computes it from the barrier
    /// algorithm it models). Returns the new clock.
    pub fn barrier_all(&self, pe: PeId, extra_ns: f64) -> u64 {
        self.poll_failure(pe, self.clock(pe));
        if self.pe_failed(pe) {
            // A dead PE must not rendezvous: it already left the group.
            return self.clock(pe);
        }
        Stats::bump(&self.stats.barriers);
        let max = self.global_barrier.arrive(self.clock(pe), &self.poison);
        let t = max + extra_ns.round() as u64;
        self.pes[pe].clock.store(t, Ordering::Release);
        self.sanitizer.barrier_join(pe, 0..self.num_pes(), t);
        t
    }

    /// Rendezvous a subset of PEs (each member passes the same sorted
    /// `group`, which must contain `pe`). Clock rule as in `barrier_all`.
    pub fn barrier_group(&self, pe: PeId, group: &[PeId], extra_ns: f64) -> u64 {
        debug_assert!(group.windows(2).all(|w| w[0] < w[1]), "group must be sorted and unique");
        debug_assert!(group.contains(&pe), "barrier group must contain the calling PE");
        self.poll_failure(pe, self.clock(pe));
        if self.pe_failed(pe) {
            return self.clock(pe);
        }
        Stats::bump(&self.stats.barriers);
        let barrier = {
            let mut map = self.subset_barriers.lock();
            map.entry(group.to_vec())
                .or_insert_with(|| {
                    let b = ClockBarrier::new(group.len());
                    // Members already dead at creation never arrive.
                    if let Some(fs) = &self.faults {
                        for &g in group {
                            if fs.is_failed(g) {
                                b.leave();
                            }
                        }
                    }
                    Arc::new(b)
                })
                .clone()
        };
        let max = barrier.arrive(self.clock(pe), &self.poison);
        let t = max + extra_ns.round() as u64;
        self.pes[pe].clock.store(t, Ordering::Release);
        self.sanitizer.barrier_join(pe, group.iter().copied(), t);
        t
    }

    // ---- compute model ---------------------------------------------------

    /// Charge `flops` floating-point operations of local compute to `pe`.
    pub fn compute_flops(&self, pe: PeId, flops: f64) -> u64 {
        self.charge_compute(pe, flops / self.cfg.compute.core_gflops)
    }

    /// Charge `n` generic local operations (loop iterations, hash probes...).
    pub fn compute_ops(&self, pe: PeId, n: u64) -> u64 {
        self.charge_compute(pe, n as f64 * self.cfg.compute.local_op_ns)
    }

    fn charge_compute(&self, pe: PeId, ns: f64) -> u64 {
        let begin = self.clock(pe);
        let end = self.advance(pe, ns);
        if self.tracer.enabled() && end > begin {
            self.tracer.record(Span::op(pe, SpanKind::Compute, begin, end, None, 0));
        }
        if self.metrics.enabled() {
            self.metrics.observe(pe, "compute_ns", None, end - begin);
        }
        end
    }
}

/// Handle given to the SPMD closure: one per PE thread.
///
/// `Pe` is `Copy`-cheap to pass around; all state lives in the [`Machine`].
#[derive(Clone, Copy)]
pub struct Pe<'m> {
    id: PeId,
    machine: &'m Machine,
}

impl<'m> Pe<'m> {
    pub(crate) fn new(id: PeId, machine: &'m Machine) -> Self {
        Pe { id, machine }
    }

    /// This PE's index, `0..n`.
    #[inline]
    pub fn id(&self) -> PeId {
        self.id
    }

    /// Total PEs in the job.
    #[inline]
    pub fn n(&self) -> usize {
        self.machine.num_pes()
    }

    /// The machine this PE runs on.
    #[inline]
    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    /// Node hosting this PE.
    #[inline]
    pub fn node(&self) -> usize {
        self.machine.node_of(self.id)
    }

    /// Current virtual time, ns.
    #[inline]
    pub fn now(&self) -> u64 {
        self.machine.clock(self.id)
    }

    /// Advance this PE's virtual clock by `ns`.
    #[inline]
    pub fn advance(&self, ns: f64) -> u64 {
        self.machine.advance(self.id, ns)
    }

    /// Charge local floating-point work to the clock.
    #[inline]
    pub fn compute_flops(&self, flops: f64) -> u64 {
        self.machine.compute_flops(self.id, flops)
    }

    /// Charge generic local operations to the clock.
    #[inline]
    pub fn compute_ops(&self, n: u64) -> u64 {
        self.machine.compute_ops(self.id, n)
    }
}

impl std::fmt::Debug for Pe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pe({}/{})", self.id, self.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::generic_smp;

    #[test]
    fn node_layout_is_blockwise() {
        let m = Machine::new(crate::platforms::stampede(4, 16));
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(15), 0);
        assert_eq!(m.node_of(16), 1);
        assert_eq!(m.node_of(63), 3);
        assert!(m.same_node(0, 15));
        assert!(!m.same_node(15, 16));
    }

    #[test]
    fn clock_advance_and_lift() {
        let m = Machine::new(generic_smp(2));
        assert_eq!(m.clock(0), 0);
        assert_eq!(m.advance(0, 10.4), 10);
        assert_eq!(m.advance(0, 10.6), 21);
        assert_eq!(m.lift_clock(0, 5), 21, "lift below current is a no-op");
        assert_eq!(m.lift_clock(0, 100), 100);
        assert_eq!(m.clock(1), 0, "other PEs unaffected");
    }

    #[test]
    fn compute_charges_by_gflops() {
        let m = Machine::new(generic_smp(1)); // 2.5 GF/s core
        m.compute_flops(0, 2500.0);
        assert_eq!(m.clock(0), 1000);
    }

    #[test]
    fn fault_hooks_are_inert_without_a_plan() {
        // Force the no-plan state: a PGAS_FAULT_PLAN env default (the CI
        // test-faulted job) would otherwise reach this machine.
        crate::fault::with_forced_plan(crate::fault::FaultPlan::none(), || {
            let m = Machine::new(generic_smp(2));
            assert!(!m.faults_active());
            assert!(m.fault_plan().is_none());
            assert!(m.fault_draw(0).is_none());
            assert_eq!(m.fault_backoff_ns(0, 1), 0);
            assert_eq!(m.degradation_factor(0, 12345), 1.0);
            assert!(!m.pe_failed(0));
            assert!(m.failed_pes().is_empty());
            assert!(!m.any_pe_failed());
        });
    }

    #[test]
    fn zero_plan_builds_no_fault_state() {
        use crate::fault::FaultPlan;
        let m = Machine::new(generic_smp(2).with_faults(FaultPlan::none()));
        assert!(!m.faults_active());
    }

    #[test]
    fn scheduled_failure_trips_when_clock_crosses_deadline() {
        use crate::fault::FaultPlan;
        let m = Machine::new(generic_smp(2).with_faults(FaultPlan::new(1).with_pe_failure(1, 100)));
        assert!(m.faults_active());
        m.advance(1, 99.0);
        assert!(!m.pe_failed(1), "deadline not reached yet");
        m.advance(1, 1.0);
        assert!(m.pe_failed(1));
        assert_eq!(m.failed_pes(), vec![1]);
        assert_eq!(m.stats().snapshot().pe_failures, 1);
        let events = m.stats().drain_faults();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "pe-failure");
        assert_eq!(events[0].at_ns, 100);
        // The survivor's barrier completes alone; the dead PE's is a no-op.
        assert_eq!(m.barrier_all(0, 5.0), m.clock(0));
        let dead_clock = m.clock(1);
        assert_eq!(m.barrier_all(1, 5.0), dead_clock, "dead PE does not rendezvous");
    }

    #[test]
    fn heaps_are_independent() {
        let m = Machine::new(generic_smp(2));
        m.heap(0).write_bytes(0, b"abcdefgh");
        let mut out = [0u8; 8];
        m.heap(1).read_bytes(0, &mut out);
        assert_eq!(out, [0u8; 8]);
    }
}
