//! Small-op aggregation default: process-wide and per-thread resolution of
//! whether conduits built on a machine should coalesce small ops.
//!
//! The machine itself never aggregates anything — coalescing lives in the
//! conduit layer (`pgas-conduit`'s per-destination-node buffers and
//! active-message paths). What lives here is the *resolution* of the
//! default, because it must mirror how every other machine-wide switch
//! (sanitizer, fault plan, trace, metrics, workers) resolves: a
//! `with_forced_aggregation` thread override beats an explicit
//! `MachineConfig::with_aggregation` choice, which beats the process-wide
//! `PGAS_COALESCE` environment default. Thread-locals do not propagate to
//! PE threads, so `Machine::new` captures the resolution on the launching
//! thread and conduits read it back through
//! [`crate::machine::Machine::aggregation_forced`] /
//! [`crate::machine::Machine::aggregation_default`].

/// The process-wide default from `PGAS_COALESCE`, read exactly once
/// (mirroring `PGAS_SANITIZER` / `PGAS_WORKERS` resolution). Unset or
/// unparsable yields `None`: conduits fall back to their own default (off).
pub(crate) fn env_default() -> Option<bool> {
    static ENV_DEFAULT: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var("PGAS_COALESCE").ok().and_then(|v| {
            match v.trim().to_ascii_lowercase().as_str() {
                "1" | "true" | "on" | "yes" => Some(true),
                "0" | "false" | "off" | "no" => Some(false),
                _ => None,
            }
        })
    })
}

thread_local! {
    static FORCED_AGGREGATION: std::cell::Cell<Option<bool>> =
        const { std::cell::Cell::new(None) };
}

/// Run `f` with every machine built *on this thread* forced to aggregation
/// `on`, beating both the config and the `PGAS_COALESCE` environment
/// default — the same precedence the sanitizer, fault-plan, trace, metrics,
/// and worker overrides use. Restored on exit, including on unwind.
pub fn with_forced_aggregation<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_AGGREGATION.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCED_AGGREGATION.with(|c| c.replace(Some(on))));
    f()
}

/// The setting forced by [`with_forced_aggregation`] on the current thread,
/// if any.
pub(crate) fn forced_aggregation() -> Option<bool> {
    FORCED_AGGREGATION.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_aggregation_scopes_and_restores() {
        assert_eq!(forced_aggregation(), None);
        with_forced_aggregation(true, || {
            assert_eq!(forced_aggregation(), Some(true));
            with_forced_aggregation(false, || assert_eq!(forced_aggregation(), Some(false)));
            assert_eq!(forced_aggregation(), Some(true));
        });
        assert_eq!(forced_aggregation(), None);
    }

    #[test]
    fn forced_aggregation_restores_on_unwind() {
        let r = std::panic::catch_unwind(|| {
            with_forced_aggregation(true, || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(forced_aggregation(), None);
    }
}
