//! A small JSON tree + pretty printer, shared by the trace exporter and the
//! benchmark report writers.
//!
//! The workspace builds without registry access, so instead of `serde_json`
//! this module provides the few pieces those call sites need: a [`Json`]
//! value you can assemble by hand, a pretty printer that matches
//! `serde_json::to_string_pretty`'s layout (two-space indent,
//! `"key": value`), and a strict parser used by tests to validate emitted
//! documents.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (what a struct serializer
/// would emit), backed by a Vec of pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer-typed numbers print without a fractional part (`1`), like
    /// serde_json does for u64/i64 fields.
    Int(i64),
    /// Float-typed numbers always print with one (`1.0`), like serde_json
    /// does for f64 fields; `{:?}` is Rust's shortest round-trip form.
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn int(v: impl Into<i64>) -> Json {
        Json::Int(v.into())
    }

    pub fn uint(v: usize) -> Json {
        Json::Int(v as i64)
    }

    pub fn float(v: f64) -> Json {
        Json::Float(v)
    }

    pub fn opt_uint(v: Option<usize>) -> Json {
        match v {
            Some(v) => Json::uint(v),
            None => Json::Null,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline-free
    /// body, mirroring `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
                let _ = write!(out, "{v:?}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    // ---- accessors used by tests ---------------------------------------

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing (test-support) -------------------------------------------------

/// Parse a JSON document. Strict enough to validate our own output and
/// friendly error messages are not a goal — this exists so tests can check
/// emitted documents are well-formed and inspect them.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16 + (d as char).to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    e => return Err(format!("bad escape '\\{}'", e as char)),
                },
                b => {
                    // Re-assemble UTF-8 multibyte sequences byte-by-byte.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if b >= 0xF0 {
                            4
                        } else if b >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let end = start + len;
                        let chunk = self.bytes.get(start..end).ok_or("truncated UTF-8 sequence")?;
                        out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|e| format!("bad number '{text}': {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Json::Array(items)),
                c => return Err(format!("expected ',' or ']', got '{}'", c as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(format!("duplicate key '{key}'"));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Json::Object(fields)),
                c => return Err(format!("expected ',' or '}}', got '{}'", c as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_layout() {
        let doc = Json::Array(vec![Json::Object(vec![
            ("name".into(), Json::str("put")),
            ("pid".into(), Json::uint(1)),
            ("peer".into(), Json::Null),
            ("ok".into(), Json::Bool(true)),
        ])]);
        let expect = "[\n  {\n    \"name\": \"put\",\n    \"pid\": 1,\n    \"peer\": null,\n    \"ok\": true\n  }\n]";
        assert_eq!(doc.pretty(), expect);
    }

    #[test]
    fn numbers_print_like_serde() {
        assert_eq!(Json::int(1).pretty(), "1");
        assert_eq!(Json::int(-17i64).pretty(), "-17");
        assert_eq!(Json::float(1.0).pretty(), "1.0", "f64 fields keep their decimal point");
        assert_eq!(Json::float(2.5).pretty(), "2.5");
    }

    #[test]
    fn parse_round_trips_own_output() {
        let doc = Json::Object(vec![
            ("a".into(), Json::Array(vec![Json::Int(1), Json::Float(2.5), Json::Null])),
            ("s".into(), Json::str("he said \"hi\"\n")),
            ("empty".into(), Json::Array(vec![])),
        ]);
        let parsed = parse(&doc.pretty()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("{\"a\": 1, \"a\": 2}").is_err());
    }

    #[test]
    fn escaped_strings_round_trip() {
        let s = "tab\there \"quote\" back\\slash\nnewline";
        let doc = Json::str(s);
        let parsed = parse(&doc.pretty()).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }
}
