//! End-to-end checksum default: process-wide and per-thread resolution of
//! whether conduits built on a machine should checksum wire payloads.
//!
//! The machine itself checksums nothing — CRC32 computation and verification
//! live in the conduit layer (`pgas-conduit`'s `integrity` module), applied
//! when an op is submitted and re-checked when its payload is applied at the
//! target. What lives here is the *resolution* of the default, mirroring how
//! every other machine-wide switch (sanitizer, fault plan, trace, metrics,
//! workers, aggregation) resolves: a `with_forced_checksums` thread override
//! beats an explicit `MachineConfig::with_checksums` choice, which beats the
//! process-wide `PGAS_CHECKSUM` environment default. Thread-locals do not
//! propagate to PE threads, so `Machine::new` captures the resolution on the
//! launching thread and conduits read it back through
//! [`crate::machine::Machine::checksums_enabled`].
//!
//! Checksums are free in virtual time: a verified transfer charges exactly
//! what an unverified one does, so enabling them changes no digest. What
//! they add is *detection*: an injected `FaultKind::Corrupt` that would
//! otherwise be a generic link-level reject becomes a typed
//! `PayloadCorrupt` retry, counted separately and surfaced on the stat
//! chain when the retry budget runs out.

/// The process-wide default from `PGAS_CHECKSUM`, read exactly once
/// (mirroring `PGAS_COALESCE` resolution). Unset or unparsable yields
/// `None`: conduits fall back to their own default (off).
pub(crate) fn env_default() -> Option<bool> {
    static ENV_DEFAULT: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var("PGAS_CHECKSUM").ok().and_then(|v| {
            match v.trim().to_ascii_lowercase().as_str() {
                "1" | "true" | "on" | "yes" => Some(true),
                "0" | "false" | "off" | "no" => Some(false),
                _ => None,
            }
        })
    })
}

thread_local! {
    static FORCED_CHECKSUMS: std::cell::Cell<Option<bool>> =
        const { std::cell::Cell::new(None) };
}

/// Run `f` with every machine built *on this thread* forced to payload
/// checksums `on`, beating both the config and the `PGAS_CHECKSUM`
/// environment default — the same precedence the sanitizer, fault-plan,
/// trace, metrics, worker, and aggregation overrides use. Restored on exit,
/// including on unwind.
pub fn with_forced_checksums<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_CHECKSUMS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCED_CHECKSUMS.with(|c| c.replace(Some(on))));
    f()
}

/// The setting forced by [`with_forced_checksums`] on the current thread,
/// if any.
pub(crate) fn forced_checksums() -> Option<bool> {
    FORCED_CHECKSUMS.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_checksums_scope_and_restore() {
        assert_eq!(forced_checksums(), None);
        with_forced_checksums(true, || {
            assert_eq!(forced_checksums(), Some(true));
            with_forced_checksums(false, || assert_eq!(forced_checksums(), Some(false)));
            assert_eq!(forced_checksums(), Some(true));
        });
        assert_eq!(forced_checksums(), None);
    }

    #[test]
    fn forced_checksums_restore_on_unwind() {
        let r = std::panic::catch_unwind(|| {
            with_forced_checksums(true, || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(forced_checksums(), None);
    }
}
