//! Span-graph diffing: attribute a makespan change between two runs of the
//! same workload to critical-path categories and per-op-kind metric shifts.
//!
//! The simulator is deterministic in virtual time, so two runs of the same
//! configuration produce bit-identical [`RunDigest`]s — a self-diff is
//! exactly zero everywhere, and any non-zero delta is a real behavioural
//! change. The digest is deliberately small (makespan, per-category
//! critical-path totals, per-(PE, category) totals, and aggregated key
//! metric series keyed op-kind × peer-node) so it can be committed as a
//! `BENCH_<platform>.json` baseline and compared against fresh runs by the
//! `bench regress` CLI.
//!
//! [`CritDiff::regressions`] applies a configurable relative tolerance, so
//! jobs that legitimately shift time around (fault-plan runs, sanitizer
//! runs) can reuse the differ with a loose tolerance while the default CI
//! gate stays tight.

use std::collections::BTreeMap;

use crate::critpath::{CriticalPathReport, PathCategory, CATEGORIES};
use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::tailprof::{ReqPathReport, ReqPhase, REQ_PHASES};

/// Histogram series worth baselining: every op-kind latency series the
/// conduit records, plus queue wait, payload sizes and the planner's
/// misprediction ratio. A closed list keeps baselines small and stable.
pub const KEY_METRICS: [&str; 13] = [
    "put_ns",
    "get_ns",
    "amo_ns",
    "quiet_ns",
    "barrier_ns",
    "wait_until_ns",
    "compute_ns",
    "collective_ns",
    "retry_ns",
    "fault_ns",
    "nic_queue_ns",
    "op_bytes",
    "plan_cost_ratio_pct",
];

/// One aggregated metric series: a histogram summed over PEs, keyed by name
/// and peer node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDigest {
    pub name: String,
    pub peer_node: Option<usize>,
    pub count: u64,
    pub sum: u64,
}

/// Aggregate every [`KEY_METRICS`] histogram of a snapshot over PEs, keyed
/// `(name, peer_node)`, sorted by that key.
pub fn digest_metrics(snap: &MetricsSnapshot) -> Vec<MetricDigest> {
    let mut agg: BTreeMap<(&str, Option<usize>), (u64, u64)> = BTreeMap::new();
    for name in KEY_METRICS {
        for h in snap.histograms_named(name) {
            let slot = agg.entry((name, h.peer_node)).or_insert((0, 0));
            slot.0 += h.count;
            slot.1 += h.sum;
        }
    }
    agg.into_iter()
        .map(|((name, peer_node), (count, sum))| MetricDigest {
            name: name.to_string(),
            peer_node,
            count,
            sum,
        })
        .collect()
}

/// The comparable essence of one run: everything the regression harness
/// needs, nothing it doesn't. Deterministic — two runs of the same config
/// produce equal digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDigest {
    pub makespan_ns: u64,
    /// Critical-path totals in [`CATEGORIES`] order; sums to the makespan.
    pub category_ns: [u64; 5],
    /// Per-(PE, category) critical-path totals, for attributing a category
    /// delta to the PE whose chain slice grew. Sorted, zero entries omitted.
    pub by_pe: Vec<(usize, PathCategory, u64)>,
    /// Aggregated key metric series (see [`digest_metrics`]).
    pub metrics: Vec<MetricDigest>,
    /// Number of served requests folded into [`RunDigest::req_phase_ns`]
    /// (0 for workloads without request markers — the pre-request baseline
    /// format, which parses and serializes unchanged).
    pub req_count: u64,
    /// Request-phase latency totals over all served requests, in
    /// [`REQ_PHASES`] order (see `tailprof::req_paths`).
    pub req_phase_ns: [u64; 6],
}

impl RunDigest {
    /// Digest a finished run from its critical-path report and metrics.
    pub fn from_run(report: &CriticalPathReport, metrics: &MetricsSnapshot) -> RunDigest {
        RunDigest::from_run_with_requests(report, metrics, &[])
    }

    /// [`RunDigest::from_run`] plus per-request path reports: serving runs
    /// additionally baseline their request-phase latency totals, so a diff
    /// between two serving span graphs attributes the makespan delta per
    /// request-phase category.
    pub fn from_run_with_requests(
        report: &CriticalPathReport,
        metrics: &MetricsSnapshot,
        requests: &[ReqPathReport],
    ) -> RunDigest {
        let mut category_ns = [0u64; 5];
        let mut by_pe: BTreeMap<(usize, PathCategory), u64> = BTreeMap::new();
        for seg in &report.segments {
            let idx = CATEGORIES.iter().position(|&c| c == seg.category).unwrap();
            category_ns[idx] += seg.duration_ns();
            *by_pe.entry((seg.pe, seg.category)).or_insert(0) += seg.duration_ns();
        }
        let mut req_phase_ns = [0u64; 6];
        for r in requests {
            for (slot, v) in req_phase_ns.iter_mut().zip(r.phase_ns) {
                *slot += v;
            }
        }
        RunDigest {
            makespan_ns: report.makespan_ns,
            category_ns,
            by_pe: by_pe.into_iter().map(|((pe, c), ns)| (pe, c, ns)).collect(),
            metrics: digest_metrics(metrics),
            req_count: requests.len() as u64,
            req_phase_ns,
        }
    }

    /// JSON export (stable field order — the baseline file format).
    pub fn to_json(&self) -> Json {
        let totals = CATEGORIES
            .iter()
            .zip(self.category_ns)
            .map(|(c, ns)| (c.label().to_string(), Json::uint(ns as usize)))
            .collect();
        let by_pe = self
            .by_pe
            .iter()
            .map(|&(pe, c, ns)| {
                Json::Object(vec![
                    ("pe".to_string(), Json::uint(pe)),
                    ("category".to_string(), Json::str(c.label())),
                    ("ns".to_string(), Json::uint(ns as usize)),
                ])
            })
            .collect();
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut fields = vec![("name".to_string(), Json::Str(m.name.clone()))];
                if let Some(node) = m.peer_node {
                    fields.push(("peer_node".to_string(), Json::uint(node)));
                }
                fields.push(("count".to_string(), Json::uint(m.count as usize)));
                fields.push(("sum".to_string(), Json::uint(m.sum as usize)));
                Json::Object(fields)
            })
            .collect();
        let mut fields = vec![
            ("makespan_ns".to_string(), Json::uint(self.makespan_ns as usize)),
            ("totals_ns".to_string(), Json::Object(totals)),
            ("by_pe".to_string(), Json::Array(by_pe)),
            ("metrics".to_string(), Json::Array(metrics)),
        ];
        // Only serving runs carry the request block, so baselines of
        // request-free figures stay byte-identical with the old format.
        if self.req_count > 0 {
            let phases = REQ_PHASES
                .iter()
                .zip(self.req_phase_ns)
                .map(|(p, ns)| (p.label().to_string(), Json::uint(ns as usize)))
                .collect();
            fields.push((
                "requests".to_string(),
                Json::Object(vec![
                    ("count".to_string(), Json::uint(self.req_count as usize)),
                    ("phase_ns".to_string(), Json::Object(phases)),
                ]),
            ));
        }
        Json::Object(fields)
    }

    /// Parse a digest previously written by [`RunDigest::to_json`].
    pub fn from_json(j: &Json) -> Result<RunDigest, String> {
        let uint = |j: &Json, key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(|v| v.as_i64())
                .map(|v| v as u64)
                .ok_or_else(|| format!("digest missing numeric field `{key}`"))
        };
        let makespan_ns = uint(j, "makespan_ns")?;
        let totals = j.get("totals_ns").ok_or("digest missing `totals_ns`")?;
        let mut category_ns = [0u64; 5];
        for (i, c) in CATEGORIES.iter().enumerate() {
            category_ns[i] = uint(totals, c.label())?;
        }
        let mut by_pe = Vec::new();
        for e in j.get("by_pe").and_then(|v| v.as_array()).ok_or("digest missing `by_pe`")? {
            let cat = e
                .get("category")
                .and_then(|v| v.as_str())
                .and_then(PathCategory::parse)
                .ok_or("bad by_pe category")?;
            by_pe.push((uint(e, "pe")? as usize, cat, uint(e, "ns")?));
        }
        let mut metrics = Vec::new();
        for e in j.get("metrics").and_then(|v| v.as_array()).ok_or("digest missing `metrics`")? {
            metrics.push(MetricDigest {
                name: e.get("name").and_then(|v| v.as_str()).ok_or("bad metric name")?.to_string(),
                peer_node: e.get("peer_node").and_then(|v| v.as_i64()).map(|v| v as usize),
                count: uint(e, "count")?,
                sum: uint(e, "sum")?,
            });
        }
        // Optional request block (absent in pre-request baselines).
        let mut req_count = 0u64;
        let mut req_phase_ns = [0u64; 6];
        if let Some(req) = j.get("requests") {
            req_count = uint(req, "count")?;
            let phases = req.get("phase_ns").ok_or("request block missing `phase_ns`")?;
            for (i, p) in REQ_PHASES.iter().enumerate() {
                req_phase_ns[i] = uint(phases, p.label())?;
            }
        }
        Ok(RunDigest { makespan_ns, category_ns, by_pe, metrics, req_count, req_phase_ns })
    }
}

/// Delta of one critical-path category between baseline and candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentDelta {
    pub category: PathCategory,
    pub base_ns: u64,
    pub cand_ns: u64,
}

impl SegmentDelta {
    pub fn delta_ns(&self) -> i64 {
        self.cand_ns as i64 - self.base_ns as i64
    }
}

/// Delta of one (PE, category) critical-path slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeDelta {
    pub pe: usize,
    pub category: PathCategory,
    pub base_ns: u64,
    pub cand_ns: u64,
}

impl PeDelta {
    pub fn delta_ns(&self) -> i64 {
        self.cand_ns as i64 - self.base_ns as i64
    }
}

/// Delta of one request-phase latency total between two serving runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqPhaseDelta {
    pub phase: ReqPhase,
    pub base_ns: u64,
    pub cand_ns: u64,
}

impl ReqPhaseDelta {
    pub fn delta_ns(&self) -> i64 {
        self.cand_ns as i64 - self.base_ns as i64
    }
}

/// Delta of one aggregated metric series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDelta {
    pub name: String,
    pub peer_node: Option<usize>,
    pub base_count: u64,
    pub cand_count: u64,
    pub base_sum: u64,
    pub cand_sum: u64,
}

impl MetricDelta {
    pub fn sum_delta(&self) -> i64 {
        self.cand_sum as i64 - self.base_sum as i64
    }

    pub fn count_delta(&self) -> i64 {
        self.cand_count as i64 - self.base_count as i64
    }
}

/// The full attribution of a makespan change between two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritDiff {
    pub base_makespan_ns: u64,
    pub cand_makespan_ns: u64,
    /// One entry per category, in [`CATEGORIES`] order (zero deltas kept so
    /// the table is always complete).
    pub categories: Vec<SegmentDelta>,
    /// Changed (PE, category) slices only, sorted by key.
    pub by_pe: Vec<PeDelta>,
    /// Changed metric series only, sorted by (name, peer_node).
    pub metrics: Vec<MetricDelta>,
    /// Served request counts (0 = that side had no request markers).
    pub base_req_count: u64,
    pub cand_req_count: u64,
    /// One entry per request phase, in [`REQ_PHASES`] order (complete table,
    /// like `categories`); all-zero when neither run served requests.
    pub req_phases: Vec<ReqPhaseDelta>,
}

impl CritDiff {
    /// Compare a candidate digest against a baseline.
    pub fn between(base: &RunDigest, cand: &RunDigest) -> CritDiff {
        let categories = CATEGORIES
            .iter()
            .enumerate()
            .map(|(i, &category)| SegmentDelta {
                category,
                base_ns: base.category_ns[i],
                cand_ns: cand.category_ns[i],
            })
            .collect();

        let mut pe_keys: BTreeMap<(usize, PathCategory), (u64, u64)> = BTreeMap::new();
        for &(pe, c, ns) in &base.by_pe {
            pe_keys.entry((pe, c)).or_insert((0, 0)).0 = ns;
        }
        for &(pe, c, ns) in &cand.by_pe {
            pe_keys.entry((pe, c)).or_insert((0, 0)).1 = ns;
        }
        let by_pe = pe_keys
            .into_iter()
            .filter(|&(_, (b, c))| b != c)
            .map(|((pe, category), (base_ns, cand_ns))| PeDelta { pe, category, base_ns, cand_ns })
            .collect();

        // (base count, base sum, cand count, cand sum) keyed by series.
        type SeriesSums = (u64, u64, u64, u64);
        let mut m_keys: BTreeMap<(String, Option<usize>), SeriesSums> = BTreeMap::new();
        for m in &base.metrics {
            let e = m_keys.entry((m.name.clone(), m.peer_node)).or_insert((0, 0, 0, 0));
            e.0 = m.count;
            e.1 = m.sum;
        }
        for m in &cand.metrics {
            let e = m_keys.entry((m.name.clone(), m.peer_node)).or_insert((0, 0, 0, 0));
            e.2 = m.count;
            e.3 = m.sum;
        }
        let metrics =
            m_keys
                .into_iter()
                .filter(|&(_, (bc, bs, cc, cs))| bc != cc || bs != cs)
                .map(|((name, peer_node), (base_count, base_sum, cand_count, cand_sum))| {
                    MetricDelta { name, peer_node, base_count, cand_count, base_sum, cand_sum }
                })
                .collect();

        let req_phases = REQ_PHASES
            .iter()
            .enumerate()
            .map(|(i, &phase)| ReqPhaseDelta {
                phase,
                base_ns: base.req_phase_ns[i],
                cand_ns: cand.req_phase_ns[i],
            })
            .collect();

        CritDiff {
            base_makespan_ns: base.makespan_ns,
            cand_makespan_ns: cand.makespan_ns,
            categories,
            by_pe,
            metrics,
            base_req_count: base.req_count,
            cand_req_count: cand.req_count,
            req_phases,
        }
    }

    pub fn makespan_delta_ns(&self) -> i64 {
        self.cand_makespan_ns as i64 - self.base_makespan_ns as i64
    }

    /// True when the two digests were identical — the determinism check.
    pub fn is_zero(&self) -> bool {
        self.makespan_delta_ns() == 0
            && self.categories.iter().all(|c| c.delta_ns() == 0)
            && self.by_pe.is_empty()
            && self.metrics.is_empty()
            && self.base_req_count == self.cand_req_count
            && self.req_phases.iter().all(|p| p.delta_ns() == 0)
    }

    /// Regression verdicts at relative tolerance `tol` (e.g. 0.02 = 2%).
    /// Empty means "no regression". A *faster* candidate never regresses;
    /// a category only regresses when its growth exceeds `tol` of the
    /// baseline makespan (growth in one category offset by shrinkage in
    /// another is how optimisations look, so categories are judged against
    /// the whole run, not against their own — often tiny — baseline).
    pub fn regressions(&self, tol: f64) -> Vec<String> {
        let mut out = Vec::new();
        let base = self.base_makespan_ns as f64;
        if (self.cand_makespan_ns as f64) > base * (1.0 + tol) {
            out.push(format!(
                "makespan regressed: {} -> {} ns ({:+.2}%, tolerance {:.1}%)",
                self.base_makespan_ns,
                self.cand_makespan_ns,
                pct(self.makespan_delta_ns(), self.base_makespan_ns),
                tol * 100.0
            ));
        }
        for c in &self.categories {
            let grow = c.delta_ns();
            if grow > 0 && grow as f64 > tol * base.max(1.0) {
                let pe = self
                    .by_pe
                    .iter()
                    .filter(|p| p.category == c.category)
                    .max_by_key(|p| p.delta_ns());
                let attribution = match pe {
                    Some(p) => format!(" (largest growth on PE {}: {:+} ns)", p.pe, p.delta_ns()),
                    None => String::new(),
                };
                out.push(format!(
                    "{} grew {:+} ns ({} -> {} ns, {:.2}% of baseline makespan){}",
                    c.category.label(),
                    grow,
                    c.base_ns,
                    c.cand_ns,
                    100.0 * grow as f64 / base.max(1.0),
                    attribution
                ));
            }
        }
        // Request-phase growth is judged only when the baseline actually
        // carries request data — a pre-request baseline diffed against a
        // request-marking candidate must not flag phantom regressions.
        if self.base_req_count > 0 {
            let req_base: u64 = self.req_phases.iter().map(|p| p.base_ns).sum();
            for p in &self.req_phases {
                let grow = p.delta_ns();
                if grow > 0 && grow as f64 > tol * (req_base as f64).max(1.0) {
                    out.push(format!(
                        "request phase {} grew {:+} ns ({} -> {} ns, {:.2}% of baseline \
                         request time)",
                        p.phase.label(),
                        grow,
                        p.base_ns,
                        p.cand_ns,
                        100.0 * grow as f64 / (req_base as f64).max(1.0),
                    ));
                }
            }
        }
        out
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "makespan: {} -> {} ns ({:+} ns, {:+.2}%)\n",
            self.base_makespan_ns,
            self.cand_makespan_ns,
            self.makespan_delta_ns(),
            pct(self.makespan_delta_ns(), self.base_makespan_ns),
        );
        out.push_str(&format!(
            "  {:<16} {:>14} {:>14} {:>12}\n",
            "category", "base ns", "cand ns", "delta ns"
        ));
        for c in &self.categories {
            out.push_str(&format!(
                "  {:<16} {:>14} {:>14} {:>+12}\n",
                c.category.label(),
                c.base_ns,
                c.cand_ns,
                c.delta_ns()
            ));
        }
        if !self.by_pe.is_empty() {
            out.push_str("  changed path slices (pe, category):\n");
            for p in &self.by_pe {
                out.push_str(&format!(
                    "    PE {:<4} {:<16} {} -> {} ns ({:+} ns)\n",
                    p.pe,
                    p.category.label(),
                    p.base_ns,
                    p.cand_ns,
                    p.delta_ns()
                ));
            }
        }
        if self.base_req_count > 0 || self.cand_req_count > 0 {
            out.push_str(&format!(
                "  requests: {} -> {} served\n",
                self.base_req_count, self.cand_req_count
            ));
            for p in &self.req_phases {
                out.push_str(&format!(
                    "  {:<16} {:>14} {:>14} {:>+12}\n",
                    p.phase.label(),
                    p.base_ns,
                    p.cand_ns,
                    p.delta_ns()
                ));
            }
        }
        if !self.metrics.is_empty() {
            out.push_str("  changed metric series:\n");
            for m in &self.metrics {
                let peer = match m.peer_node {
                    Some(n) => format!(" (peer node {n})"),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "    {}{}: count {} -> {} ({:+}), sum {} -> {} ({:+})\n",
                    m.name,
                    peer,
                    m.base_count,
                    m.cand_count,
                    m.count_delta(),
                    m.base_sum,
                    m.cand_sum,
                    m.sum_delta()
                ));
            }
        }
        if self.is_zero() {
            out.push_str("  runs are identical (zero delta everywhere)\n");
        }
        out
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> Json {
        let categories = self
            .categories
            .iter()
            .map(|c| {
                Json::Object(vec![
                    ("category".to_string(), Json::str(c.category.label())),
                    ("base_ns".to_string(), Json::uint(c.base_ns as usize)),
                    ("cand_ns".to_string(), Json::uint(c.cand_ns as usize)),
                    ("delta_ns".to_string(), Json::int(c.delta_ns())),
                ])
            })
            .collect();
        let by_pe = self
            .by_pe
            .iter()
            .map(|p| {
                Json::Object(vec![
                    ("pe".to_string(), Json::uint(p.pe)),
                    ("category".to_string(), Json::str(p.category.label())),
                    ("base_ns".to_string(), Json::uint(p.base_ns as usize)),
                    ("cand_ns".to_string(), Json::uint(p.cand_ns as usize)),
                    ("delta_ns".to_string(), Json::int(p.delta_ns())),
                ])
            })
            .collect();
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut fields = vec![("name".to_string(), Json::Str(m.name.clone()))];
                if let Some(node) = m.peer_node {
                    fields.push(("peer_node".to_string(), Json::uint(node)));
                }
                fields.push(("base_count".to_string(), Json::uint(m.base_count as usize)));
                fields.push(("cand_count".to_string(), Json::uint(m.cand_count as usize)));
                fields.push(("base_sum".to_string(), Json::uint(m.base_sum as usize)));
                fields.push(("cand_sum".to_string(), Json::uint(m.cand_sum as usize)));
                Json::Object(fields)
            })
            .collect();
        let mut fields = vec![
            ("base_makespan_ns".to_string(), Json::uint(self.base_makespan_ns as usize)),
            ("cand_makespan_ns".to_string(), Json::uint(self.cand_makespan_ns as usize)),
            ("makespan_delta_ns".to_string(), Json::int(self.makespan_delta_ns())),
            ("categories".to_string(), Json::Array(categories)),
            ("by_pe".to_string(), Json::Array(by_pe)),
            ("metrics".to_string(), Json::Array(metrics)),
        ];
        if self.base_req_count > 0 || self.cand_req_count > 0 {
            let req_phases = self
                .req_phases
                .iter()
                .map(|p| {
                    Json::Object(vec![
                        ("phase".to_string(), Json::str(p.phase.label())),
                        ("base_ns".to_string(), Json::uint(p.base_ns as usize)),
                        ("cand_ns".to_string(), Json::uint(p.cand_ns as usize)),
                        ("delta_ns".to_string(), Json::int(p.delta_ns())),
                    ])
                })
                .collect();
            fields.push(("base_req_count".to_string(), Json::uint(self.base_req_count as usize)));
            fields.push(("cand_req_count".to_string(), Json::uint(self.cand_req_count as usize)));
            fields.push(("req_phases".to_string(), Json::Array(req_phases)));
        }
        Json::Object(fields)
    }
}

fn pct(delta: i64, base: u64) -> f64 {
    if base == 0 {
        if delta == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * delta as f64 / base as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critpath::PathSegment;
    use crate::metrics::MetricsRegistry;
    use crate::stats::StatsSnapshot;

    fn report(segs: &[(usize, PathCategory, u64, u64)]) -> CriticalPathReport {
        let segments = segs
            .iter()
            .map(|&(pe, category, begin, end)| PathSegment {
                pe,
                category,
                begin,
                end,
                what: "test",
            })
            .collect::<Vec<_>>();
        let makespan_ns = segments.iter().map(|s| s.end).max().unwrap_or(0);
        CriticalPathReport { makespan_ns, segments }
    }

    fn snap(feeds: &[(usize, &'static str, Option<usize>, u64)]) -> MetricsSnapshot {
        let reg = MetricsRegistry::new(true, 4);
        for &(pe, name, peer, v) in feeds {
            reg.observe(pe, name, peer, v);
        }
        reg.snapshot(StatsSnapshot::default())
    }

    #[test]
    fn self_diff_is_zero() {
        let r = report(&[
            (0, PathCategory::Compute, 0, 100),
            (1, PathCategory::Wire, 100, 250),
            (1, PathCategory::NicContention, 250, 300),
        ]);
        let m = snap(&[(0, "put_ns", Some(1), 150), (1, "get_ns", Some(0), 90)]);
        let a = RunDigest::from_run(&r, &m);
        let b = RunDigest::from_run(&r, &m);
        assert_eq!(a, b);
        let diff = CritDiff::between(&a, &b);
        assert!(diff.is_zero());
        assert!(diff.regressions(0.0).is_empty());
        assert!(diff.render().contains("identical"));
    }

    #[test]
    fn regression_is_attributed_to_the_grown_category_and_pe() {
        let base = RunDigest::from_run(
            &report(&[(0, PathCategory::Compute, 0, 100), (1, PathCategory::Wire, 100, 200)]),
            &snap(&[]),
        );
        let cand = RunDigest::from_run(
            &report(&[
                (0, PathCategory::Compute, 0, 100),
                (1, PathCategory::Wire, 100, 200),
                (1, PathCategory::NicContention, 200, 320),
            ]),
            &snap(&[]),
        );
        let diff = CritDiff::between(&base, &cand);
        assert_eq!(diff.makespan_delta_ns(), 120);
        let regs = diff.regressions(0.05);
        assert!(regs.iter().any(|r| r.contains("makespan regressed")), "{regs:?}");
        assert!(
            regs.iter().any(|r| r.contains("nic_contention") && r.contains("PE 1")),
            "{regs:?}"
        );
        // Within a huge tolerance nothing regresses.
        assert!(diff.regressions(2.0).is_empty());
        // A faster candidate never regresses.
        assert!(CritDiff::between(&cand, &base).regressions(0.0).is_empty());
    }

    #[test]
    fn metric_shifts_survive_the_diff() {
        let r = report(&[(0, PathCategory::Compute, 0, 10)]);
        let base = RunDigest::from_run(&r, &snap(&[(0, "put_ns", Some(1), 100)]));
        let cand = RunDigest::from_run(
            &r,
            &snap(&[(0, "put_ns", Some(1), 100), (0, "put_ns", Some(1), 60)]),
        );
        let diff = CritDiff::between(&base, &cand);
        assert_eq!(diff.metrics.len(), 1);
        let m = &diff.metrics[0];
        assert_eq!(m.name, "put_ns");
        assert_eq!(m.peer_node, Some(1));
        assert_eq!(m.count_delta(), 1);
        assert_eq!(m.sum_delta(), 60);
        assert!(!diff.is_zero());
    }

    #[test]
    fn request_phase_deltas_attribute_serving_regressions() {
        let r = report(&[(0, PathCategory::Compute, 0, 1000)]);
        let m = snap(&[]);
        let req = |phase_ns: [u64; 6]| ReqPathReport {
            id: (1 << 32) | 1,
            pe: 0,
            arrival_ns: 0,
            begin_ns: 0,
            end_ns: phase_ns.iter().sum(),
            phase_ns,
        };
        let base =
            RunDigest::from_run_with_requests(&r, &m, &[req([10, 100, 20, 5, 0, 300])]);
        let cand =
            RunDigest::from_run_with_requests(&r, &m, &[req([10, 100, 20, 5, 400, 300])]);
        // Self-diff of a serving digest is exactly zero.
        assert!(CritDiff::between(&base, &base).is_zero());
        // The fault-delay growth is attributed to its phase.
        let diff = CritDiff::between(&base, &cand);
        assert!(!diff.is_zero());
        let regs = diff.regressions(0.02);
        assert!(regs.iter().any(|s| s.contains("request phase fault_delay")), "{regs:?}");
        assert!(diff.render().contains("fault_delay"));
        // A pre-request baseline never flags phantom request regressions.
        let old = RunDigest::from_run(&r, &m);
        assert_eq!(old.req_count, 0);
        assert!(CritDiff::between(&old, &cand).regressions(0.0).is_empty());
        // JSON: request block roundtrips, and is omitted for request-free
        // digests (old baselines stay byte-identical).
        let text = cand.to_json().pretty();
        assert!(text.contains("\"requests\""));
        let back = RunDigest::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(cand, back);
        assert!(!old.to_json().pretty().contains("\"requests\""));
        let old_back = RunDigest::from_json(&crate::json::parse(&old.to_json().pretty()).unwrap())
            .unwrap();
        assert_eq!(old, old_back);
    }

    #[test]
    fn digest_json_roundtrips() {
        let r = report(&[
            (0, PathCategory::Compute, 0, 100),
            (2, PathCategory::Synchronization, 100, 130),
        ]);
        let m = snap(&[(0, "put_ns", Some(1), 150), (2, "barrier_ns", None, 30)]);
        let digest = RunDigest::from_run(&r, &m);
        let text = digest.to_json().pretty();
        let parsed = crate::json::parse(&text).expect("digest JSON parses");
        let back = RunDigest::from_json(&parsed).expect("digest JSON loads");
        assert_eq!(digest, back);
        assert!(CritDiff::between(&digest, &back).is_zero());
    }

    #[test]
    fn digest_ignores_non_key_metrics() {
        let r = report(&[(0, PathCategory::Compute, 0, 10)]);
        let m = snap(&[(0, "put_ns", None, 5), (0, "some_experimental_ns", None, 7)]);
        let d = RunDigest::from_run(&r, &m);
        assert!(d.metrics.iter().all(|m| m.name != "some_experimental_ns"));
        assert!(d.metrics.iter().any(|m| m.name == "put_ns"));
    }

    #[test]
    fn diff_json_is_wellformed() {
        let base = RunDigest::from_run(
            &report(&[(0, PathCategory::Compute, 0, 100)]),
            &snap(&[(0, "put_ns", None, 10)]),
        );
        let cand = RunDigest::from_run(
            &report(&[(0, PathCategory::Compute, 0, 150)]),
            &snap(&[(0, "put_ns", None, 25)]),
        );
        let diff = CritDiff::between(&base, &cand);
        let text = diff.to_json().pretty();
        let parsed = crate::json::parse(&text).expect("diff JSON parses");
        assert_eq!(parsed.get("makespan_delta_ns").and_then(|v| v.as_i64()), Some(50));
        assert_eq!(parsed.get("categories").and_then(|v| v.as_array()).map(|a| a.len()), Some(5));
    }
}
