//! Virtual-time execution tracing.
//!
//! When enabled in [`crate::MachineConfig`], the communication layers record
//! a span for every operation (puts, gets, atomics, barriers, waits...) with
//! begin/end in virtual nanoseconds. The result can be exported in the
//! Chrome trace-event format (`chrome://tracing`, Perfetto) with one row per
//! PE, grouped by node — a timeline of what the simulated job did and where
//! its virtual time went.

use crate::json::Json;
use parking_lot::Mutex;

/// What a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    Put,
    Get,
    Amo,
    Quiet,
    Barrier,
    WaitUntil,
    Compute,
    Collective,
    /// Detection timeout + backoff charged after an injected transient fault.
    Retry,
    /// A fault event itself (PE death); zero-length marker span.
    Fault,
}

impl SpanKind {
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Put => "put",
            SpanKind::Get => "get",
            SpanKind::Amo => "amo",
            SpanKind::Quiet => "quiet",
            SpanKind::Barrier => "barrier",
            SpanKind::WaitUntil => "wait_until",
            SpanKind::Compute => "compute",
            SpanKind::Collective => "collective",
            SpanKind::Retry => "retry",
            SpanKind::Fault => "fault",
        }
    }
}

/// One traced operation.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    pub pe: usize,
    pub kind: SpanKind,
    /// Virtual begin/end, ns.
    pub begin: u64,
    pub end: u64,
    /// Communication peer, if any.
    pub peer: Option<usize>,
    /// Payload bytes, if any.
    pub bytes: usize,
}

/// Trace sink shared by all PEs of a machine.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    spans: Mutex<Vec<Span>>,
}

impl Tracer {
    pub fn new(enabled: bool) -> Tracer {
        Tracer { enabled, spans: Mutex::new(Vec::new()) }
    }

    /// Is tracing active? (Callers may skip span construction otherwise.)
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one span (no-op when disabled).
    #[inline]
    pub fn record(&self, span: Span) {
        if self.enabled {
            self.spans.lock().push(span);
        }
    }

    /// Take all recorded spans, sorted by begin time.
    pub fn drain(&self) -> Vec<Span> {
        let mut spans = std::mem::take(&mut *self.spans.lock());
        spans.sort_by_key(|s| (s.begin, s.pe));
        spans
    }
}

/// Render spans in the Chrome trace-event JSON format: `pid` = node,
/// `tid` = PE, timestamps in microseconds ("complete" events).
pub fn chrome_trace_json(spans: &[Span], cores_per_node: usize) -> String {
    let events: Vec<Json> = spans
        .iter()
        .map(|s| {
            Json::Object(vec![
                ("name".into(), Json::str(s.kind.label())),
                ("ph".into(), Json::str("X")),
                ("pid".into(), Json::uint(s.pe / cores_per_node.max(1))),
                ("tid".into(), Json::uint(s.pe)),
                ("ts".into(), Json::float(s.begin as f64 / 1000.0)),
                ("dur".into(), Json::float(s.end.saturating_sub(s.begin) as f64 / 1000.0)),
                (
                    "args".into(),
                    Json::Object(vec![
                        ("peer".into(), Json::opt_uint(s.peer)),
                        ("bytes".into(), Json::uint(s.bytes)),
                    ]),
                ),
            ])
        })
        .collect();
    Json::Array(events).pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pe: usize, kind: SpanKind, begin: u64, end: u64) -> Span {
        Span { pe, kind, begin, end, peer: Some(1), bytes: 64 }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(false);
        assert!(!t.enabled());
        t.record(span(0, SpanKind::Put, 0, 10));
        assert!(t.drain().is_empty());
    }

    #[test]
    fn drain_sorts_by_begin() {
        let t = Tracer::new(true);
        t.record(span(1, SpanKind::Get, 50, 70));
        t.record(span(0, SpanKind::Put, 10, 30));
        t.record(span(2, SpanKind::Amo, 20, 25));
        let spans = t.drain();
        assert_eq!(spans.len(), 3);
        assert!(spans.windows(2).all(|w| w[0].begin <= w[1].begin));
        assert!(t.drain().is_empty(), "drain empties the sink");
    }

    #[test]
    fn chrome_json_shape() {
        let spans =
            vec![span(0, SpanKind::Put, 1000, 3000), span(17, SpanKind::Barrier, 5000, 9000)];
        let json = chrome_trace_json(&spans, 16);
        assert!(json.contains("\"name\": \"put\""));
        assert!(json.contains("\"name\": \"barrier\""));
        assert!(json.contains("\"ph\": \"X\""));
        // PE 17 with 16 cores/node lives on node 1.
        assert!(json.contains("\"pid\": 1"));
        // 1000 ns -> 1.0 us.
        assert!(json.contains("\"ts\": 1.0"));
        let parsed = crate::json::parse(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 2);
    }
}
