//! Virtual-time execution tracing with causal flow links.
//!
//! When enabled, the communication layers record a span for every operation
//! (puts, gets, atomics, barriers, waits...) with begin/end in virtual
//! nanoseconds. Spans live in **per-PE buffers** — the hot path locks only
//! the issuing PE's own buffer, never a global one — and carry:
//!
//! - a deterministic id (`pe << 32 | seq`) and an optional parent id, so
//!   nested operations (e.g. the puts inside a collective) form a tree;
//! - a queue-wait vs. service-time breakdown from the NIC model
//!   ([`Span::queue_ns`] / [`Span::service_ns`]);
//! - the remote delivery window ([`Span::remote_begin`] / [`Span::remote_end`])
//!   for operations that land on a peer, which links an origin op to its
//!   remote completion — the raw material for chrome-trace *flow events* and
//!   for the critical-path profiler ([`crate::critpath`]).
//!
//! The export ([`chrome_trace_json`]) produces Chrome trace-event JSON
//! (`chrome://tracing`, Perfetto) with process/thread name metadata, one row
//! per PE grouped by node, and flow arrows from each origin op to a
//! synthesized delivery slice on the peer's row.
//!
//! Enabling resolves like the sanitizer and fault plan: a thread-forced
//! override ([`with_forced_tracing`]) beats `MachineConfig::trace`, which
//! beats the `PGAS_TRACE` environment default.

use std::cell::Cell;
use std::sync::OnceLock;

use crate::json::Json;
use parking_lot::Mutex;

/// What a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    Put,
    Get,
    Amo,
    Quiet,
    Barrier,
    WaitUntil,
    Compute,
    Collective,
    /// Detection timeout + backoff charged after an injected transient fault.
    Retry,
    /// A fault event itself (PE death); zero-length marker span.
    Fault,
}

impl SpanKind {
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Put => "put",
            SpanKind::Get => "get",
            SpanKind::Amo => "amo",
            SpanKind::Quiet => "quiet",
            SpanKind::Barrier => "barrier",
            SpanKind::WaitUntil => "wait_until",
            SpanKind::Compute => "compute",
            SpanKind::Collective => "collective",
            SpanKind::Retry => "retry",
            SpanKind::Fault => "fault",
        }
    }
}

/// One traced operation.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    pub pe: usize,
    pub kind: SpanKind,
    /// Virtual begin/end, ns.
    pub begin: u64,
    pub end: u64,
    /// Communication peer, if any.
    pub peer: Option<usize>,
    /// Payload bytes, if any.
    pub bytes: usize,
    /// Deterministic span id (`pe << 32 | seq`, seq starts at 1); assigned by
    /// [`Tracer::record`]. 0 means "not yet recorded".
    pub id: u64,
    /// Id of the enclosing scope span (0 = top level). Assigned from the
    /// per-PE scope stack by [`Tracer::record`] unless already set.
    pub parent: u64,
    /// Time spent waiting behind earlier traffic on the NICs this op crossed.
    pub queue_ns: u64,
    /// Time the op actually occupied NIC lanes (service time).
    pub service_ns: u64,
    /// Remote delivery window begin (0 when the op has no remote side).
    pub remote_begin: u64,
    /// Remote delivery window end — the virtual time the payload landed on
    /// the peer. Quiet spans reuse this field for the completion target they
    /// waited on, which is how the critical-path walker pairs a quiet with
    /// the flow that bounded it.
    pub remote_end: u64,
    /// Team the issuing context was scoped to when the op ran (0 = the
    /// world team / no team scope). Lets flow analysis attribute traffic to
    /// a `form team`/`change team` region.
    pub team: u32,
    /// Serving-request id this span belongs to (0 = none). Stamped by
    /// [`Tracer::record`] from the PE's open request (see
    /// [`Tracer::begin_request`]), so every op a request caused — including
    /// its retries under a fault plan — can be folded back into that
    /// request's latency decomposition.
    pub req: u64,
}

impl Span {
    /// A plain span with no flow detail (the common constructor).
    pub fn op(
        pe: usize,
        kind: SpanKind,
        begin: u64,
        end: u64,
        peer: Option<usize>,
        bytes: usize,
    ) -> Span {
        Span {
            pe,
            kind,
            begin,
            end,
            peer,
            bytes,
            id: 0,
            parent: 0,
            queue_ns: 0,
            service_ns: 0,
            remote_begin: 0,
            remote_end: 0,
            team: 0,
            req: 0,
        }
    }
}

/// One served request's lifecycle markers, recorded by
/// [`Tracer::begin_request`] / [`Tracer::end_request`]: when it *arrived*
/// (was admitted by the open-loop virtual clock), when the PE actually
/// started serving it, and when it completed. The gap between arrival and
/// begin is real queueing delay — the generator admits by the virtual clock,
/// not by completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqRecord {
    /// Request id, `pe << 32 | seq` by convention (seq starts at 1).
    pub id: u64,
    /// PE that served the request.
    pub pe: usize,
    /// Open-loop arrival instant (virtual ns).
    pub arrival_ns: u64,
    /// Instant the PE began serving.
    pub begin_ns: u64,
    /// Completion instant.
    pub end_ns: u64,
    /// NIC queue-wait accumulated by the request's spans (live running sum;
    /// the authoritative per-request decomposition is
    /// `tailprof::req_paths`, which also resolves overlap).
    pub nic_ns: u64,
    /// NIC service time accumulated by the request's spans.
    pub wire_ns: u64,
    /// Synchronization stall accumulated (barriers, waits, unpaired quiets).
    pub sync_ns: u64,
    /// Fault detection/retry delay accumulated.
    pub fault_ns: u64,
}

#[derive(Debug, Default)]
struct PeBuf {
    spans: Vec<Span>,
    next_seq: u32,
    scope_stack: Vec<u64>,
    /// Open serving request on this PE (0 = none); stamped onto every span
    /// recorded while set.
    current_req: u64,
    /// Arrival/begin of the open request, carried until `end_request`.
    open_req: (u64, u64),
    /// Live phase sums of the open request: nic, wire, sync, fault.
    open_phase: [u64; 4],
    requests: Vec<ReqRecord>,
}

impl PeBuf {
    fn next_id(&mut self, pe: usize) -> u64 {
        self.next_seq += 1;
        ((pe as u64) << 32) | self.next_seq as u64
    }
}

/// Trace sink shared by all PEs of a machine; sharded per PE so recording
/// never contends across PEs.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    pes: Vec<Mutex<PeBuf>>,
}

impl Tracer {
    pub fn new(enabled: bool, num_pes: usize) -> Tracer {
        let pes = if enabled {
            (0..num_pes.max(1)).map(|_| Mutex::new(PeBuf::default())).collect()
        } else {
            Vec::new()
        };
        Tracer { enabled, pes }
    }

    /// Is tracing active? (Callers may skip span construction otherwise.)
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one span (no-op when disabled). Assigns the span's id and, if
    /// `span.parent` is unset, its parent from the PE's open scope stack.
    /// Returns the assigned id (0 when disabled).
    #[inline]
    pub fn record(&self, mut span: Span) -> u64 {
        if !self.enabled {
            return 0;
        }
        let mut buf = self.pes[span.pe].lock();
        span.id = buf.next_id(span.pe);
        if span.parent == 0 {
            span.parent = buf.scope_stack.last().copied().unwrap_or(0);
        }
        if span.req == 0 {
            span.req = buf.current_req;
        }
        if span.req != 0 && span.req == buf.current_req {
            // Keep the open request's live phase sums current so streaming
            // consumers can attribute tails without walking the span graph.
            let len = span.end.saturating_sub(span.begin);
            match span.kind {
                SpanKind::Put | SpanKind::Get | SpanKind::Amo => {
                    buf.open_phase[0] += span.queue_ns;
                    buf.open_phase[1] += span.service_ns;
                }
                SpanKind::Quiet => {
                    let nic = span.queue_ns.min(len);
                    buf.open_phase[0] += nic;
                    buf.open_phase[2] += len - nic;
                }
                SpanKind::Barrier | SpanKind::WaitUntil | SpanKind::Collective => {
                    buf.open_phase[2] += len;
                }
                SpanKind::Retry | SpanKind::Fault => {
                    buf.open_phase[3] += len;
                }
                SpanKind::Compute => {}
            }
        }
        let id = span.id;
        buf.spans.push(span);
        id
    }

    /// Mark `pe` as serving request `req_id` (admitted at `arrival_ns`,
    /// service beginning at `begin_ns`): every span recorded on `pe` until
    /// the matching [`Tracer::end_request`] is stamped with the id. No-op
    /// when disabled — request decomposition is part of the tracing layer.
    pub fn begin_request(&self, pe: usize, req_id: u64, arrival_ns: u64, begin_ns: u64) {
        if !self.enabled {
            return;
        }
        let mut buf = self.pes[pe].lock();
        buf.current_req = req_id;
        buf.open_req = (arrival_ns, begin_ns);
        buf.open_phase = [0; 4];
    }

    /// Close the open request on `pe`, recording its [`ReqRecord`] with
    /// completion instant `end_ns`. No-op when disabled or no request open.
    pub fn end_request(&self, pe: usize, end_ns: u64) {
        if !self.enabled {
            return;
        }
        let mut buf = self.pes[pe].lock();
        if buf.current_req == 0 {
            return;
        }
        let (arrival_ns, begin_ns) = buf.open_req;
        let id = buf.current_req;
        let [nic_ns, wire_ns, sync_ns, fault_ns] = buf.open_phase;
        buf.requests.push(ReqRecord {
            id,
            pe,
            arrival_ns,
            begin_ns,
            end_ns,
            nic_ns,
            wire_ns,
            sync_ns,
            fault_ns,
        });
        buf.current_req = 0;
        buf.open_req = (0, 0);
        buf.open_phase = [0; 4];
    }

    /// Take all recorded request records, merged across PEs and sorted by
    /// `(pe, id)` — a deterministic total order.
    pub fn drain_requests(&self) -> Vec<ReqRecord> {
        let mut reqs = Vec::new();
        for buf in &self.pes {
            reqs.append(&mut buf.lock().requests);
        }
        reqs.sort_by_key(|r| (r.pe, r.id));
        reqs
    }

    /// Peek all completed request records without consuming them, sorted by
    /// `(pe, id)` — the live-streaming counterpart of
    /// [`Tracer::drain_requests`]. Like [`Tracer::latest_per_pe`], this
    /// leaves the buffers intact for the end-of-run drain.
    pub fn live_requests(&self) -> Vec<ReqRecord> {
        let mut reqs = Vec::new();
        for buf in &self.pes {
            reqs.extend_from_slice(&buf.lock().requests);
        }
        reqs.sort_by_key(|r| (r.pe, r.id));
        reqs
    }

    /// Open a nesting scope on `pe` (e.g. at collective entry): reserves and
    /// returns the scope's span id; spans recorded on `pe` until the matching
    /// [`Tracer::end_scope`] become its children. Returns 0 when disabled.
    pub fn begin_scope(&self, pe: usize) -> u64 {
        if !self.enabled {
            return 0;
        }
        let mut buf = self.pes[pe].lock();
        let id = buf.next_id(pe);
        buf.scope_stack.push(id);
        id
    }

    /// Close the innermost scope on `pe`, recording `span` as the scope span
    /// itself (it keeps the id reserved by [`Tracer::begin_scope`]).
    pub fn end_scope(&self, pe: usize, mut span: Span) {
        if !self.enabled {
            return;
        }
        let mut buf = self.pes[pe].lock();
        let id = buf.scope_stack.pop().expect("end_scope without begin_scope");
        span.pe = pe;
        span.id = id;
        span.parent = buf.scope_stack.last().copied().unwrap_or(0);
        buf.spans.push(span);
    }

    /// Peek each PE's most recently recorded span without consuming
    /// anything — the live-streaming view of "what is PE p doing right
    /// now". Returns an empty vec when tracing is disabled. Unlike
    /// [`Tracer::drain`] this leaves the buffers intact, so a stream
    /// sampling mid-run does not rob the end-of-run trace.
    pub fn latest_per_pe(&self) -> Vec<Option<Span>> {
        self.pes.iter().map(|buf| buf.lock().spans.last().copied()).collect()
    }

    /// Take all recorded spans, merged across PEs and sorted by
    /// `(begin, pe, id)` — a deterministic total order.
    pub fn drain(&self) -> Vec<Span> {
        let mut spans = Vec::new();
        for buf in &self.pes {
            spans.append(&mut buf.lock().spans);
        }
        spans.sort_by_key(|s| (s.begin, s.pe, s.id));
        spans
    }
}

/// Render spans in the Chrome trace-event JSON format: `pid` = node,
/// `tid` = PE, timestamps in microseconds.
///
/// Emits, in order: `M` metadata events naming each node's process and each
/// PE's thread; `X` complete events for the spans themselves (with queue/
/// service breakdown in `args` when present); and for every span with a
/// remote delivery window, a synthesized `deliver` slice on the peer's row
/// plus an `s`/`f` flow-event pair drawing the causal arrow origin → peer.
pub fn chrome_trace_json(spans: &[Span], cores_per_node: usize) -> String {
    chrome_trace_json_with_requests(spans, &[], cores_per_node)
}

/// [`chrome_trace_json`] plus a per-request view: every [`ReqRecord`] becomes
/// an async `b`/`e` slice pair (cat `request`, id = request id) spanning
/// arrival → completion on the serving PE's row, and every span stamped with
/// a request id gets an id-keyed flow arrow (cat `req`) from the request's
/// service begin to the span it caused — so a single slow request can be
/// eyeballed in Perfetto: its queueing delay, then arrows fanning out to the
/// ops (and retries) it triggered.
pub fn chrome_trace_json_with_requests(
    spans: &[Span],
    requests: &[ReqRecord],
    cores_per_node: usize,
) -> String {
    // cores_per_node = 0 means "node structure unknown": everything is one
    // node (pid 0), rather than the old behaviour of pid = pe.
    let node_of = |pe: usize| pe.checked_div(cores_per_node).unwrap_or(0);
    let mut events: Vec<Json> = Vec::new();

    let mut pes: Vec<usize> = spans
        .iter()
        .flat_map(|s| std::iter::once(s.pe).chain(s.peer.filter(|_| s.remote_end > 0)))
        .chain(requests.iter().map(|r| r.pe))
        .collect();
    pes.sort_unstable();
    pes.dedup();
    let mut nodes: Vec<usize> = pes.iter().map(|&pe| node_of(pe)).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for node in nodes {
        events.push(Json::Object(vec![
            ("name".into(), Json::str("process_name")),
            ("ph".into(), Json::str("M")),
            ("pid".into(), Json::uint(node)),
            ("args".into(), Json::Object(vec![("name".into(), Json::Str(format!("node {node}")))])),
        ]));
    }
    for pe in pes {
        events.push(Json::Object(vec![
            ("name".into(), Json::str("thread_name")),
            ("ph".into(), Json::str("M")),
            ("pid".into(), Json::uint(node_of(pe))),
            ("tid".into(), Json::uint(pe)),
            ("args".into(), Json::Object(vec![("name".into(), Json::Str(format!("PE {pe}")))])),
        ]));
    }

    let us = |ns: u64| Json::float(ns as f64 / 1000.0);

    // Per-request async track: one b/e pair per request, keyed by request
    // id, spanning arrival -> completion on the serving PE's row.
    let mut req_begin: std::collections::BTreeMap<u64, (usize, u64)> = Default::default();
    for r in requests {
        req_begin.insert(r.id, (r.pe, r.begin_ns));
        events.push(Json::Object(vec![
            ("name".into(), Json::str("request")),
            ("cat".into(), Json::str("request")),
            ("ph".into(), Json::str("b")),
            ("id".into(), Json::uint(r.id as usize)),
            ("pid".into(), Json::uint(node_of(r.pe))),
            ("tid".into(), Json::uint(r.pe)),
            ("ts".into(), us(r.arrival_ns)),
            (
                "args".into(),
                Json::Object(vec![
                    ("queue_ns".into(), Json::uint(r.begin_ns.saturating_sub(r.arrival_ns) as usize)),
                    (
                        "latency_ns".into(),
                        Json::uint(r.end_ns.saturating_sub(r.arrival_ns) as usize),
                    ),
                ]),
            ),
        ]));
        events.push(Json::Object(vec![
            ("name".into(), Json::str("request")),
            ("cat".into(), Json::str("request")),
            ("ph".into(), Json::str("e")),
            ("id".into(), Json::uint(r.id as usize)),
            ("pid".into(), Json::uint(node_of(r.pe))),
            ("tid".into(), Json::uint(r.pe)),
            ("ts".into(), us(r.end_ns)),
        ]));
    }

    for s in spans {
        let mut args =
            vec![("peer".into(), Json::opt_uint(s.peer)), ("bytes".into(), Json::uint(s.bytes))];
        if s.queue_ns > 0 || s.service_ns > 0 {
            args.push(("queue_ns".into(), Json::uint(s.queue_ns as usize)));
            args.push(("service_ns".into(), Json::uint(s.service_ns as usize)));
        }
        if s.req != 0 {
            args.push(("req".into(), Json::uint(s.req as usize)));
        }
        events.push(Json::Object(vec![
            ("name".into(), Json::str(s.kind.label())),
            ("ph".into(), Json::str("X")),
            ("pid".into(), Json::uint(node_of(s.pe))),
            ("tid".into(), Json::uint(s.pe)),
            ("ts".into(), us(s.begin)),
            ("dur".into(), Json::float(s.end.saturating_sub(s.begin) as f64 / 1000.0)),
            ("args".into(), Json::Object(args)),
        ]));
        // Causal flow: origin op -> delivery slice on the peer's row.
        if let (Some(peer), true) = (s.peer, s.remote_end > s.remote_begin && s.id != 0) {
            events.push(Json::Object(vec![
                ("name".into(), Json::Str(format!("deliver {}", s.kind.label()))),
                ("ph".into(), Json::str("X")),
                ("pid".into(), Json::uint(node_of(peer))),
                ("tid".into(), Json::uint(peer)),
                ("ts".into(), us(s.remote_begin)),
                (
                    "dur".into(),
                    Json::float(s.remote_end.saturating_sub(s.remote_begin) as f64 / 1000.0),
                ),
                (
                    "args".into(),
                    Json::Object(vec![
                        ("origin_pe".into(), Json::uint(s.pe)),
                        ("bytes".into(), Json::uint(s.bytes)),
                    ]),
                ),
            ]));
            let flow = |ph: &str, pe: usize, ts: u64, bind_end: bool| {
                let mut fields = vec![
                    ("name".into(), Json::str("flow")),
                    ("cat".into(), Json::str("flow")),
                    ("ph".into(), Json::str(ph)),
                    ("id".into(), Json::uint(s.id as usize)),
                    ("pid".into(), Json::uint(node_of(pe))),
                    ("tid".into(), Json::uint(pe)),
                    ("ts".into(), us(ts)),
                ];
                if bind_end {
                    fields.push(("bp".into(), Json::str("e")));
                }
                Json::Object(fields)
            };
            events.push(flow("s", s.pe, s.begin, false));
            events.push(flow("f", peer, s.remote_end, true));
        }
        // Request causality: an arrow from the request's service begin to
        // each span it caused. Keyed by the span id under its own category
        // so request arrows never collide with the delivery flows above
        // (Chrome matches flow s/f pairs by (cat, id)).
        if s.req != 0 && s.id != 0 {
            if let Some(&(req_pe, req_begin_ns)) = req_begin.get(&s.req) {
                let req_flow = |ph: &str, pe: usize, ts: u64, bind_end: bool| {
                    let mut fields = vec![
                        ("name".into(), Json::str("req_flow")),
                        ("cat".into(), Json::str("req")),
                        ("ph".into(), Json::str(ph)),
                        ("id".into(), Json::uint(s.id as usize)),
                        ("pid".into(), Json::uint(node_of(pe))),
                        ("tid".into(), Json::uint(pe)),
                        ("ts".into(), us(ts)),
                    ];
                    if bind_end {
                        fields.push(("bp".into(), Json::str("e")));
                    }
                    Json::Object(fields)
                };
                events.push(req_flow("s", req_pe, req_begin_ns.min(s.begin), false));
                events.push(req_flow("f", s.pe, s.begin, true));
            }
        }
    }
    Json::Array(events).pretty()
}

// ---------------------------------------------------------------------------
// Enable-flag resolution: forced (thread) > config > environment default.
// ---------------------------------------------------------------------------

/// Process-wide default from `PGAS_TRACE`, read once.
pub(crate) fn env_default() -> Option<bool> {
    static ENV_DEFAULT: OnceLock<Option<bool>> = OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var("PGAS_TRACE").ok().and_then(|v| crate::metrics::parse_flag(&v))
    })
}

thread_local! {
    static FORCED_TRACING: Cell<Option<bool>> = const { Cell::new(None) };
}

pub(crate) fn forced_tracing() -> Option<bool> {
    FORCED_TRACING.with(|c| c.get())
}

/// Run `f` with tracing forced on or off for machines constructed on this
/// thread, overriding both config and environment. Restores the previous
/// override on exit (including unwinds).
pub fn with_forced_tracing<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_TRACING.with(|c| c.set(self.0));
        }
    }
    let prev = FORCED_TRACING.with(|c| c.replace(Some(on)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pe: usize, kind: SpanKind, begin: u64, end: u64) -> Span {
        Span::op(pe, kind, begin, end, Some(1), 64)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(false, 4);
        assert!(!t.enabled());
        assert_eq!(t.record(span(0, SpanKind::Put, 0, 10)), 0);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn drain_sorts_by_begin() {
        let t = Tracer::new(true, 4);
        t.record(span(1, SpanKind::Get, 50, 70));
        t.record(span(0, SpanKind::Put, 10, 30));
        t.record(span(2, SpanKind::Amo, 20, 25));
        let spans = t.drain();
        assert_eq!(spans.len(), 3);
        assert!(spans.windows(2).all(|w| w[0].begin <= w[1].begin));
        assert!(t.drain().is_empty(), "drain empties the sink");
    }

    #[test]
    fn latest_per_pe_peeks_without_consuming() {
        let t = Tracer::new(true, 2);
        t.record(span(0, SpanKind::Put, 0, 10));
        t.record(span(0, SpanKind::Get, 10, 20));
        let latest = t.latest_per_pe();
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[0].unwrap().kind, SpanKind::Get);
        assert!(latest[1].is_none());
        assert_eq!(t.drain().len(), 2, "peek left the buffers intact");
        assert!(Tracer::new(false, 2).latest_per_pe().is_empty());
    }

    #[test]
    fn span_ids_are_deterministic_and_per_pe() {
        let t = Tracer::new(true, 4);
        let a = t.record(span(2, SpanKind::Put, 0, 10));
        let b = t.record(span(2, SpanKind::Put, 10, 20));
        let c = t.record(span(3, SpanKind::Get, 0, 5));
        assert_eq!(a, (2u64 << 32) | 1);
        assert_eq!(b, (2u64 << 32) | 2);
        assert_eq!(c, (3u64 << 32) | 1);
    }

    #[test]
    fn scopes_nest_children_under_parent() {
        let t = Tracer::new(true, 2);
        let scope = t.begin_scope(0);
        let child = t.record(span(0, SpanKind::Put, 5, 10));
        t.end_scope(0, span(0, SpanKind::Collective, 0, 20));
        let _top = t.record(span(0, SpanKind::Quiet, 20, 25));
        let spans = t.drain();
        let parent_span = spans.iter().find(|s| s.kind == SpanKind::Collective).unwrap();
        let child_span = spans.iter().find(|s| s.id == child).unwrap();
        let top_span = spans.iter().find(|s| s.kind == SpanKind::Quiet).unwrap();
        assert_eq!(parent_span.id, scope);
        assert_eq!(parent_span.parent, 0);
        assert_eq!(child_span.parent, scope);
        assert_eq!(top_span.parent, 0);
    }

    #[test]
    fn chrome_json_shape() {
        let spans =
            vec![span(0, SpanKind::Put, 1000, 3000), span(17, SpanKind::Barrier, 5000, 9000)];
        let json = chrome_trace_json(&spans, 16);
        assert!(json.contains("\"name\": \"put\""));
        assert!(json.contains("\"name\": \"barrier\""));
        assert!(json.contains("\"ph\": \"X\""));
        // PE 17 with 16 cores/node lives on node 1.
        assert!(json.contains("\"pid\": 1"));
        // 1000 ns -> 1.0 us.
        assert!(json.contains("\"ts\": 1.0"));
        // Metadata events label processes and threads.
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"node 1\""));
        assert!(json.contains("\"PE 17\""));
        let parsed = crate::json::parse(&json).unwrap();
        let events = parsed.as_array().unwrap();
        let x_events =
            events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).count();
        assert_eq!(x_events, 2);
    }

    #[test]
    fn zero_cores_per_node_maps_everything_to_node_zero() {
        let spans = vec![span(5, SpanKind::Put, 0, 10)];
        let json = chrome_trace_json(&spans, 0);
        // Previously pid was mislabelled as the PE index (5).
        assert!(json.contains("\"pid\": 0"));
        assert!(!json.contains("\"pid\": 5"));
    }

    #[test]
    fn flow_events_link_origin_to_delivery() {
        let t = Tracer::new(true, 4);
        let mut s = span(0, SpanKind::Put, 1000, 2000);
        s.peer = Some(2);
        s.queue_ns = 100;
        s.service_ns = 400;
        s.remote_begin = 2500;
        s.remote_end = 3000;
        t.record(s);
        let json = chrome_trace_json(&t.drain(), 2);
        assert!(json.contains("\"deliver put\""));
        assert!(json.contains("\"ph\": \"s\""));
        assert!(json.contains("\"ph\": \"f\""));
        assert!(json.contains("\"bp\": \"e\""));
        assert!(json.contains("\"queue_ns\": 100"));
        assert!(json.contains("\"service_ns\": 400"));
        let parsed = crate::json::parse(&json).unwrap();
        // Delivery slice lands on the peer's row (tid 2, node 1 of 2 cores).
        let deliver = parsed
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("deliver put"))
            .expect("deliver slice present");
        assert_eq!(deliver.get("tid").and_then(|v| v.as_i64()), Some(2));
        assert_eq!(deliver.get("pid").and_then(|v| v.as_i64()), Some(1));
    }

    #[test]
    fn request_markers_stamp_spans_and_record_lifecycle() {
        let t = Tracer::new(true, 2);
        let req = (2u64 << 32) | 1; // PE 2's request #1 id shape
        t.begin_request(0, req, 100, 150);
        t.record(span(0, SpanKind::Put, 150, 300));
        t.record(span(0, SpanKind::Get, 300, 500));
        t.end_request(0, 500);
        t.record(span(0, SpanKind::Compute, 500, 600));
        t.record(span(1, SpanKind::Put, 200, 250));
        let reqs = t.drain_requests();
        assert_eq!(
            reqs,
            vec![ReqRecord {
                id: req,
                pe: 0,
                arrival_ns: 100,
                begin_ns: 150,
                end_ns: 500,
                nic_ns: 0,
                wire_ns: 0,
                sync_ns: 0,
                fault_ns: 0,
            }]
        );
        let spans = t.drain();
        let tagged: Vec<_> = spans.iter().filter(|s| s.req == req).collect();
        assert_eq!(tagged.len(), 2, "only spans inside the request window are tagged");
        assert!(spans.iter().any(|s| s.kind == SpanKind::Compute && s.req == 0));
        assert!(spans.iter().any(|s| s.pe == 1 && s.req == 0), "other PEs unaffected");
        // Disabled tracer: markers are no-ops.
        let off = Tracer::new(false, 2);
        off.begin_request(0, req, 0, 0);
        off.end_request(0, 10);
        assert!(off.drain_requests().is_empty());
    }

    #[test]
    fn request_records_accumulate_live_phase_sums() {
        let t = Tracer::new(true, 1);
        t.begin_request(0, 1, 0, 10);
        let mut put = span(0, SpanKind::Put, 10, 100);
        put.queue_ns = 30;
        put.service_ns = 50;
        t.record(put);
        t.record(span(0, SpanKind::Barrier, 100, 160));
        t.record(span(0, SpanKind::Retry, 160, 300));
        t.record(span(0, SpanKind::Compute, 300, 350));
        // Peek mid-run: the request is still open, nothing visible yet.
        assert!(t.live_requests().is_empty());
        t.end_request(0, 350);
        let live = t.live_requests();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].nic_ns, 30);
        assert_eq!(live[0].wire_ns, 50);
        assert_eq!(live[0].sync_ns, 60);
        assert_eq!(live[0].fault_ns, 140);
        // Peeking left the record for the end-of-run drain.
        assert_eq!(t.drain_requests(), live);
        // A following request starts from zero.
        t.begin_request(0, 2, 400, 400);
        t.end_request(0, 450);
        let next = t.drain_requests();
        assert_eq!((next[0].nic_ns, next[0].fault_ns), (0, 0));
    }

    #[test]
    fn chrome_request_view_emits_async_slices_and_arrows() {
        let t = Tracer::new(true, 2);
        let req = (1u64 << 32) | 7;
        t.begin_request(0, req, 100, 150);
        t.record(span(0, SpanKind::Put, 150, 300));
        t.end_request(0, 500);
        let spans = t.drain();
        let reqs = t.drain_requests();
        let json = chrome_trace_json_with_requests(&spans, &reqs, 2);
        let parsed = crate::json::parse(&json).unwrap();
        let events = parsed.as_array().unwrap();
        let phase = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
                .collect::<Vec<_>>()
        };
        // One async b/e pair for the request, spanning arrival -> completion.
        let (b, e) = (phase("b"), phase("e"));
        assert_eq!((b.len(), e.len()), (1, 1));
        assert_eq!(b[0].get("cat").and_then(|v| v.as_str()), Some("request"));
        assert_eq!(b[0].get("id").and_then(|v| v.as_i64()), Some(req as i64));
        assert_eq!(b[0].get("ts").and_then(|v| v.as_f64()), Some(0.1));
        assert_eq!(e[0].get("ts").and_then(|v| v.as_f64()), Some(0.5));
        // One id-keyed arrow from the request to the span it caused.
        let req_flows: Vec<_> = events
            .iter()
            .filter(|ev| ev.get("cat").and_then(|v| v.as_str()) == Some("req"))
            .collect();
        assert_eq!(req_flows.len(), 2, "one s/f pair");
        assert!(json.contains("\"queue_ns\": 50"), "request args carry queueing delay");
        assert!(json.contains("\"latency_ns\": 400"));
        // Without requests the export is unchanged (golden compatibility).
        assert_eq!(chrome_trace_json(&spans, 2), chrome_trace_json_with_requests(&spans, &[], 2));
    }

    #[test]
    fn forced_tracing_restores_on_exit() {
        assert_eq!(forced_tracing(), None);
        with_forced_tracing(true, || {
            assert_eq!(forced_tracing(), Some(true));
            with_forced_tracing(false, || assert_eq!(forced_tracing(), Some(false)));
            assert_eq!(forced_tracing(), Some(true));
        });
        assert_eq!(forced_tracing(), None);
    }
}
