//! PGAS race & synchronization sanitizer.
//!
//! When enabled via [`crate::MachineConfig::sanitizer`], the machine keeps a
//! FastTrack-style shadow of every symmetric heap — per 8-byte word: the last
//! writer PE, its completion time, whether the access was atomic, and the
//! byte mask it touched, plus the analogous last-reader record — together
//! with one vector clock per PE. Happens-before edges come from the places a
//! CAF/OpenSHMEM program is *allowed* to synchronize:
//!
//! * barriers (`sync all` / `sync images` via `barrier_all`/`barrier_group`),
//! * `wait_until` observing a word (edge from the word's last writer),
//! * fetching atomics (edge from the fetched word's last writer — this is
//!   what makes an MCS lock handoff through `swap`/`compare_swap` visible).
//!
//! A non-atomic access that conflicts with a non-atomic access by another PE
//! *without* such an edge is a data race (`MissingSync`). Ordering hazards
//! found by the conduit's pending-put checker are funneled into the same
//! report sink, classified as `MissingQuiet` (stale but whole) or
//! `TornTransfer` (partial overlap with an outstanding put, so a mix of old
//! and new bytes may be observed).
//!
//! Precision notes, deliberate and documented:
//!
//! * Shadow granularity is one record per 8-byte word; the byte mask makes
//!   sub-word *disjoint* writes (e.g. two PEs filling adjacent `i32` slots of
//!   one word) conflict-free, but the shadow only remembers the most recent
//!   *writer* per word, so a third access can miss a conflict with the
//!   overwritten write record. Under-detection only — never a false positive.
//! * Reads use FastTrack's adaptive representation: a word keeps one scalar
//!   last-read epoch until two *concurrent* (unordered) readers touch it,
//!   then inflates to a per-PE read vector. A later write is checked against
//!   every recorded reader, so a racing read can no longer hide behind a
//!   subsequent synchronized read of the same word replacing its record.
//! * The `wait_until`/fetching-atomic edge joins with the writer's *live*
//!   clock row, which may be slightly ahead of the moment the flag was set.
//!   Again: can only suppress reports, never invent them.
//! * Accesses where either side is atomic are exempt from conflict checks
//!   (Fortran atomics carry no ordering obligation), but still create shadow
//!   records so sync edges can be derived from them.

use crate::machine::PeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// How the sanitizer behaves, set in [`crate::MachineConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizerMode {
    /// No shadow state, no checks, no overhead. The default.
    #[default]
    Off,
    /// Record every hazard in the simulation outcome; never panic.
    Record,
    /// Panic on the PE that triggers the first hazard (poisons the job, so
    /// `run_with_result` reports it as a `SimError`).
    Panic,
}

impl SanitizerMode {
    /// Parse a mode name as accepted by the `PGAS_SANITIZER` environment
    /// variable: `off`, `record`, or `panic` (case-insensitive, trimmed).
    pub fn parse(s: &str) -> Option<SanitizerMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Some(SanitizerMode::Off),
            "record" => Some(SanitizerMode::Record),
            "panic" => Some(SanitizerMode::Panic),
            _ => None,
        }
    }
}

/// The process-wide default mode from `PGAS_SANITIZER`, read exactly once
/// (so later `set_var` games or parallel test threads can't observe
/// different defaults for different machines). An unset or unparsable
/// variable yields `None` and the config's own mode stands.
pub(crate) fn env_default() -> Option<SanitizerMode> {
    static ENV_DEFAULT: std::sync::OnceLock<Option<SanitizerMode>> = std::sync::OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var("PGAS_SANITIZER").ok().as_deref().and_then(SanitizerMode::parse)
    })
}

thread_local! {
    static FORCED_MODE: std::cell::Cell<Option<SanitizerMode>> =
        const { std::cell::Cell::new(None) };
}

/// Run `f` with every machine built *on this thread* forced to sanitizer
/// `mode`, regardless of what its `MachineConfig` says. Retained as a thin
/// shim for harnesses that need a scoped override; the preferred way to turn
/// the sanitizer on without code changes is the process-wide `PGAS_SANITIZER`
/// environment variable (see [`crate::MachineConfig::sanitizer_mode`]),
/// which this override still beats when both are present.
/// The previous override is restored on exit, including on unwind.
pub fn with_forced_mode<R>(mode: SanitizerMode, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SanitizerMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_MODE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCED_MODE.with(|c| c.replace(Some(mode))));
    f()
}

/// The mode forced by [`with_forced_mode`] on the current thread, if any.
pub(crate) fn forced_mode() -> Option<SanitizerMode> {
    FORCED_MODE.with(|c| c.get())
}

/// Classification of a detected hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// Same-PE ordering bug: an access overlapped the PE's own un-quieted
    /// put covering the same bytes — a `shmem_quiet` (or `sync memory`) is
    /// missing between issue and reuse.
    MissingQuiet,
    /// An access *partially* overlapped an outstanding put, so it can
    /// observe a mix of old and new bytes even on a machine that delivers
    /// puts atomically at word grain.
    TornTransfer,
    /// Cross-PE data race: two non-atomic accesses from different PEs touch
    /// the same bytes with no happens-before edge (barrier, `wait_until`,
    /// or fetching atomic) between them.
    MissingSync,
    /// A lock-table entry outlived its lock variable: the symmetric words
    /// backing a *held* lock were deallocated (or reallocated to a new lock)
    /// before the holder released it, so the eventual unlock targets memory
    /// that no longer belongs to that lock.
    StaleLock,
}

impl HazardKind {
    pub fn label(self) -> &'static str {
        match self {
            HazardKind::MissingQuiet => "missing-quiet hazard",
            HazardKind::TornTransfer => "torn-transfer hazard",
            HazardKind::MissingSync => "missing-sync hazard",
            HazardKind::StaleLock => "stale-lock hazard",
        }
    }
}

/// One structured diagnostic from the sanitizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardReport {
    pub kind: HazardKind,
    /// Operation that tripped the check ("put", "get", "amo", "local read",
    /// ...).
    pub op: &'static str,
    /// PE performing the access.
    pub accessor: PeId,
    /// PE whose symmetric heap holds the conflicting bytes.
    pub target: PeId,
    /// PE on the other side of the conflict (for `MissingQuiet` /
    /// `TornTransfer` this is the accessor itself).
    pub conflict_pe: PeId,
    /// Byte range of the triggering access within the target heap.
    pub offset: usize,
    pub len: usize,
    /// Virtual time of the conflicting earlier access.
    pub t_conflict: u64,
    /// Latest time of `conflict_pe` the accessor had synchronized with
    /// (0 = never).
    pub t_known: u64,
}

impl std::fmt::Display for HazardReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.kind == HazardKind::StaleLock {
            return write!(
                f,
                "{}: lock held by PE {} at PE {}'s heap bytes [{}, {}) was \
                 deallocated or reallocated before release (acquired at t={})",
                self.kind.label(),
                self.accessor,
                self.target,
                self.offset,
                self.offset + self.len,
                self.t_conflict,
            );
        }
        write!(
            f,
            "{}: {} by PE {} on PE {}'s heap bytes [{}, {}) conflicts with an \
             access by PE {} at t={} (synchronized with PE {} only up to t={})",
            self.kind.label(),
            self.op,
            self.accessor,
            self.target,
            self.offset,
            self.offset + self.len,
            self.conflict_pe,
            self.t_conflict,
            self.conflict_pe,
            self.t_known,
        )
    }
}

// Shadow-word packing. Writer: `(pe + 1) << 9 | atomic << 8 | byte_mask`;
// reader: `(pe + 1) << 9 | byte_mask`. Zero = no record. A reader word with
// `VECTOR_FLAG` set holds no scalar record: the word has been *inflated* and
// its full per-PE read history lives in [`HeapShadow::read_vecs`].
const MASK_BITS: u64 = 0xFF;
const ATOMIC_BIT: u64 = 1 << 8;
const PE_SHIFT: u32 = 9;
const VECTOR_FLAG: u64 = 1 << 63;

#[derive(Debug, Clone, Copy)]
struct ShadowRec {
    pe: PeId,
    atomic: bool,
    mask: u8,
}

fn unpack(word: u64) -> Option<ShadowRec> {
    if word == 0 {
        return None;
    }
    Some(ShadowRec {
        pe: (word >> PE_SHIFT) as PeId - 1,
        atomic: word & ATOMIC_BIT != 0,
        mask: (word & MASK_BITS) as u8,
    })
}

fn pack(pe: PeId, atomic: bool, mask: u8) -> u64 {
    ((pe as u64 + 1) << PE_SHIFT) | if atomic { ATOMIC_BIT } else { 0 } | mask as u64
}

/// Byte mask of `[off, off+len)` restricted to word `w` (bit i = byte
/// `w * 8 + i`).
fn word_mask(off: usize, len: usize, w: usize) -> u8 {
    let lo = (w * 8).max(off) - w * 8;
    let hi = ((w * 8 + 8).min(off + len)).saturating_sub(w * 8);
    if hi <= lo {
        return 0;
    }
    (((1u16 << hi) - (1u16 << lo)) & 0xFF) as u8
}

/// Per-PE-heap shadow arrays.
struct HeapShadow {
    writers: Box<[AtomicU64]>,
    wtimes: Box<[AtomicU64]>,
    readers: Box<[AtomicU64]>,
    rtimes: Box<[AtomicU64]>,
    /// FastTrack-style adaptive read representation: a word tracks its last
    /// read as a scalar epoch in `readers`/`rtimes` until two *concurrent*
    /// (unordered) readers touch it, at which point it inflates to a full
    /// per-PE read vector here (`read_vecs[w][pe] = (byte mask, last read
    /// time)`, mask 0 = no read) and `readers[w]` carries `VECTOR_FLAG`.
    /// Most words only ever see one reader between writes, so the common
    /// case stays two atomic loads with no locking.
    read_vecs: Mutex<HashMap<usize, Vec<(u8, u64)>>>,
}

/// The sanitizer proper: shadow memory + vector clocks + report sink.
///
/// All checking methods are no-ops when the mode is `Off`; the shadow
/// arrays are not even allocated then.
pub struct Sanitizer {
    mode: SanitizerMode,
    n_pes: usize,
    shadows: Vec<HeapShadow>,
    /// `vc[p][q]`: latest virtual time of PE `q` that PE `p` has
    /// synchronized with. Row `p` is only written from PE `p`'s thread.
    vc: Vec<Box<[AtomicU64]>>,
    reports: Mutex<Vec<HazardReport>>,
}

fn zeroed(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

impl Sanitizer {
    pub fn new(mode: SanitizerMode, n_pes: usize, heap_bytes: usize) -> Sanitizer {
        let (shadows, vc) = if mode == SanitizerMode::Off {
            (Vec::new(), Vec::new())
        } else {
            let words = heap_bytes.div_ceil(8);
            (
                (0..n_pes)
                    .map(|_| HeapShadow {
                        writers: zeroed(words),
                        wtimes: zeroed(words),
                        readers: zeroed(words),
                        rtimes: zeroed(words),
                        read_vecs: Mutex::new(HashMap::new()),
                    })
                    .collect(),
                (0..n_pes).map(|_| zeroed(n_pes)).collect(),
            )
        };
        Sanitizer { mode, n_pes, shadows, vc, reports: Mutex::new(Vec::new()) }
    }

    #[inline]
    pub fn mode(&self) -> SanitizerMode {
        self.mode
    }

    #[inline]
    pub fn is_on(&self) -> bool {
        self.mode != SanitizerMode::Off
    }

    /// Latest time of `other` that `me` has synchronized with.
    fn known(&self, me: PeId, other: PeId) -> u64 {
        self.vc[me][other].load(Ordering::Acquire)
    }

    /// Check a write by `writer` to `[off, off+len)` of `owner`'s heap
    /// against the existing shadow, then install the new write record.
    /// `time` is the write's completion time in virtual ns. Returns the
    /// first conflict found, if any.
    #[allow(clippy::too_many_arguments)]
    pub fn record_write(
        &self,
        owner: PeId,
        off: usize,
        len: usize,
        writer: PeId,
        time: u64,
        atomic: bool,
        op: &'static str,
    ) -> Option<HazardReport> {
        if !self.is_on() || len == 0 {
            return None;
        }
        let sh = &self.shadows[owner];
        let mut conflict: Option<HazardReport> = None;
        for w in off / 8..(off + len).div_ceil(8) {
            if w >= sh.writers.len() {
                break;
            }
            let mask = word_mask(off, len, w);
            if conflict.is_none() && !atomic {
                // Write/write conflict with a different, non-atomic writer.
                if let Some(prev) = unpack(sh.writers[w].load(Ordering::Acquire)) {
                    let t_prev = sh.wtimes[w].load(Ordering::Acquire);
                    if prev.pe != writer
                        && !prev.atomic
                        && prev.mask & mask != 0
                        && t_prev > self.known(writer, prev.pe)
                    {
                        conflict = Some(HazardReport {
                            kind: HazardKind::MissingSync,
                            op,
                            accessor: writer,
                            target: owner,
                            conflict_pe: prev.pe,
                            offset: off,
                            len,
                            t_conflict: t_prev,
                            t_known: self.known(writer, prev.pe),
                        });
                    }
                }
                // Write over an unsynchronized non-atomic read. An inflated
                // word checks *every* reader in its vector — the scalar
                // representation only remembers the most recent one, which
                // is exactly the record a racing read can hide behind.
                if conflict.is_none() {
                    let packed = sh.readers[w].load(Ordering::Acquire);
                    if packed & VECTOR_FLAG != 0 {
                        let vecs = sh.read_vecs.lock();
                        if let Some(v) = vecs.get(&w) {
                            for (p, &(rmask, rtime)) in v.iter().enumerate() {
                                if rmask & mask != 0 && p != writer && rtime > self.known(writer, p)
                                {
                                    conflict = Some(HazardReport {
                                        kind: HazardKind::MissingSync,
                                        op,
                                        accessor: writer,
                                        target: owner,
                                        conflict_pe: p,
                                        offset: off,
                                        len,
                                        t_conflict: rtime,
                                        t_known: self.known(writer, p),
                                    });
                                    break;
                                }
                            }
                        }
                    } else if let Some(prev) = unpack(packed) {
                        let t_prev = sh.rtimes[w].load(Ordering::Acquire);
                        if prev.pe != writer
                            && prev.mask & mask != 0
                            && t_prev > self.known(writer, prev.pe)
                        {
                            conflict = Some(HazardReport {
                                kind: HazardKind::MissingSync,
                                op,
                                accessor: writer,
                                target: owner,
                                conflict_pe: prev.pe,
                                offset: off,
                                len,
                                t_conflict: t_prev,
                                t_known: self.known(writer, prev.pe),
                            });
                        }
                    }
                }
            }
            // Install the new record. Same writer extending within a word
            // merges the mask; a different writer replaces the record.
            let packed = pack(writer, atomic, mask);
            let prev = sh.writers[w].load(Ordering::Acquire);
            let merged = match unpack(prev) {
                Some(p) if p.pe == writer && p.atomic == atomic => {
                    pack(writer, atomic, p.mask | mask)
                }
                _ => packed,
            };
            sh.writers[w].store(merged, Ordering::Release);
            sh.wtimes[w].fetch_max(time, Ordering::AcqRel);
        }
        conflict
    }

    /// Check a read by `reader` of `[off, off+len)` of `owner`'s heap
    /// against the write shadow, then install the read record (`now` is the
    /// reader's current virtual time).
    pub fn check_read(
        &self,
        owner: PeId,
        off: usize,
        len: usize,
        reader: PeId,
        now: u64,
        op: &'static str,
    ) -> Option<HazardReport> {
        if !self.is_on() || len == 0 {
            return None;
        }
        let sh = &self.shadows[owner];
        let mut conflict: Option<HazardReport> = None;
        for w in off / 8..(off + len).div_ceil(8) {
            if w >= sh.writers.len() {
                break;
            }
            let mask = word_mask(off, len, w);
            if conflict.is_none() {
                if let Some(prev) = unpack(sh.writers[w].load(Ordering::Acquire)) {
                    let t_prev = sh.wtimes[w].load(Ordering::Acquire);
                    if prev.pe != reader
                        && !prev.atomic
                        && prev.mask & mask != 0
                        && t_prev > self.known(reader, prev.pe)
                    {
                        conflict = Some(HazardReport {
                            kind: HazardKind::MissingSync,
                            op,
                            accessor: reader,
                            target: owner,
                            conflict_pe: prev.pe,
                            offset: off,
                            len,
                            t_conflict: t_prev,
                            t_known: self.known(reader, prev.pe),
                        });
                    }
                }
            }
            // Install the read, FastTrack-style: one scalar epoch while the
            // word's reads stay totally ordered, a per-PE vector once two
            // concurrent readers are seen. A read that happens-after the
            // recorded one may safely *replace* it (any write racing the old
            // read also races the new one); an unordered read may not — the
            // scalar would silently forget a read a later write races with.
            let prev = sh.readers[w].load(Ordering::Acquire);
            if prev & VECTOR_FLAG != 0 {
                let mut vecs = sh.read_vecs.lock();
                let v = vecs.entry(w).or_insert_with(|| vec![(0, 0); self.n_pes]);
                v[reader].0 |= mask;
                v[reader].1 = v[reader].1.max(now);
            } else {
                match unpack(prev) {
                    Some(p) if p.pe == reader => {
                        sh.readers[w].store(pack(reader, false, p.mask | mask), Ordering::Release);
                        sh.rtimes[w].fetch_max(now, Ordering::AcqRel);
                    }
                    Some(p) => {
                        let t_prev = sh.rtimes[w].load(Ordering::Acquire);
                        if t_prev <= self.known(reader, p.pe) {
                            // Ordered before this read: keep the scalar.
                            sh.readers[w].store(pack(reader, false, mask), Ordering::Release);
                            sh.rtimes[w].fetch_max(now, Ordering::AcqRel);
                        } else {
                            // Second concurrent reader: inflate.
                            let mut vecs = sh.read_vecs.lock();
                            let v = vecs.entry(w).or_insert_with(|| vec![(0, 0); self.n_pes]);
                            v[p.pe].0 |= p.mask;
                            v[p.pe].1 = v[p.pe].1.max(t_prev);
                            v[reader].0 |= mask;
                            v[reader].1 = v[reader].1.max(now);
                            sh.readers[w].store(VECTOR_FLAG, Ordering::Release);
                        }
                    }
                    None => {
                        sh.readers[w].store(pack(reader, false, mask), Ordering::Release);
                        sh.rtimes[w].fetch_max(now, Ordering::AcqRel);
                    }
                }
            }
        }
        conflict
    }

    /// Last writer of the word holding `off` in `owner`'s heap, with its
    /// completion time.
    pub fn last_writer(&self, owner: PeId, off: usize) -> Option<(PeId, u64)> {
        if !self.is_on() {
            return None;
        }
        let sh = &self.shadows[owner];
        let w = off / 8;
        if w >= sh.writers.len() {
            return None;
        }
        let rec = unpack(sh.writers[w].load(Ordering::Acquire))?;
        Some((rec.pe, sh.wtimes[w].load(Ordering::Acquire)))
    }

    /// Join `me`'s vector clock with `other`'s row (element-wise max). Both
    /// rows may be read concurrently; only `me`'s is written, from `me`'s
    /// thread.
    pub fn join_rows(&self, me: PeId, other: PeId) {
        if !self.is_on() || me == other {
            return;
        }
        for q in 0..self.n_pes {
            let v = self.vc[other][q].load(Ordering::Acquire);
            self.vc[me][q].fetch_max(v, Ordering::AcqRel);
        }
    }

    /// Raise `me`'s knowledge of `other` to at least `t`.
    pub fn raise(&self, me: PeId, other: PeId, t: u64) {
        if !self.is_on() {
            return;
        }
        self.vc[me][other].fetch_max(t, Ordering::AcqRel);
    }

    /// Record a barrier among `group` completing at virtual time `t`, from
    /// the perspective of member `me`: afterwards `me` knows every member up
    /// to `t` and inherits everything each member knew.
    pub fn barrier_join(&self, me: PeId, group: impl Iterator<Item = PeId>, t: u64) {
        if !self.is_on() {
            return;
        }
        for q in group {
            self.raise(me, q, t);
            self.join_rows(me, q);
        }
    }

    /// Append a report to the sink.
    pub fn push(&self, report: HazardReport) {
        self.reports.lock().push(report);
    }

    /// Drain every accumulated report (ordered by detection).
    pub fn take_reports(&self) -> Vec<HazardReport> {
        std::mem::take(&mut *self.reports.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_mask_covers_partial_words() {
        assert_eq!(word_mask(0, 8, 0), 0xFF);
        assert_eq!(word_mask(0, 4, 0), 0x0F);
        assert_eq!(word_mask(4, 4, 0), 0xF0);
        assert_eq!(word_mask(6, 4, 0), 0xC0);
        assert_eq!(word_mask(6, 4, 1), 0x03);
        assert_eq!(word_mask(8, 8, 0), 0x00);
    }

    #[test]
    fn off_mode_allocates_nothing_and_reports_nothing() {
        let s = Sanitizer::new(SanitizerMode::Off, 4, 1 << 20);
        assert!(!s.is_on());
        assert!(s.record_write(0, 0, 64, 1, 100, false, "put").is_none());
        assert!(s.check_read(0, 0, 64, 2, 50, "get").is_none());
        assert!(s.take_reports().is_empty());
    }

    #[test]
    fn unsynchronized_read_after_remote_write_races() {
        let s = Sanitizer::new(SanitizerMode::Record, 4, 4096);
        assert!(s.record_write(0, 64, 16, 1, 500, false, "put").is_none());
        let r = s.check_read(0, 64, 16, 2, 400, "get").expect("race detected");
        assert_eq!(r.kind, HazardKind::MissingSync);
        assert_eq!(r.conflict_pe, 1);
        assert_eq!(r.t_conflict, 500);
        assert_eq!(r.t_known, 0);
    }

    #[test]
    fn barrier_edge_suppresses_the_race() {
        let s = Sanitizer::new(SanitizerMode::Record, 4, 4096);
        s.record_write(0, 64, 16, 1, 500, false, "put");
        s.barrier_join(2, 0..4, 600);
        assert!(s.check_read(0, 64, 16, 2, 700, "get").is_none());
    }

    #[test]
    fn owner_reading_its_own_write_is_fine() {
        let s = Sanitizer::new(SanitizerMode::Record, 2, 4096);
        s.record_write(0, 0, 8, 0, 10, false, "local write");
        assert!(s.check_read(0, 0, 8, 0, 20, "local read").is_none());
    }

    #[test]
    fn atomic_accesses_are_exempt_but_still_recorded() {
        let s = Sanitizer::new(SanitizerMode::Record, 4, 4096);
        s.record_write(0, 0, 8, 1, 500, true, "amo");
        assert!(s.check_read(0, 0, 8, 2, 100, "get").is_none(), "atomic writer is exempt");
        assert_eq!(s.last_writer(0, 0), Some((1, 500)));
    }

    #[test]
    fn disjoint_subword_writes_do_not_conflict() {
        let s = Sanitizer::new(SanitizerMode::Record, 4, 4096);
        // PE 1 writes bytes [0, 4), PE 2 writes bytes [4, 8) of word 0.
        assert!(s.record_write(0, 0, 4, 1, 500, false, "put").is_none());
        assert!(s.record_write(0, 4, 4, 2, 600, false, "put").is_none());
        // But an overlapping third write does conflict (with PE 2, the
        // surviving record).
        let r = s.record_write(0, 4, 4, 3, 700, false, "put").expect("conflict");
        assert_eq!(r.conflict_pe, 2);
    }

    #[test]
    fn write_over_unsynchronized_read_races() {
        let s = Sanitizer::new(SanitizerMode::Record, 4, 4096);
        assert!(s.check_read(0, 0, 8, 2, 300, "get").is_none());
        let r = s.record_write(0, 0, 8, 1, 400, false, "put").expect("race");
        assert_eq!(r.kind, HazardKind::MissingSync);
        assert_eq!(r.conflict_pe, 2);
        assert_eq!(r.t_conflict, 300);
    }

    #[test]
    fn concurrent_reader_vector_catches_overwritten_read() {
        // Three-PE regression the scalar last-read record provably misses:
        // PE 2 and PE 3 read word 0 with no ordering between them, then PE 1
        // synchronizes with PE 3 only and writes. A single-record detector
        // forgot PE 2's read the moment PE 3's replaced it and reported the
        // write clean; the inflated vector still holds PE 2's read.
        let s = Sanitizer::new(SanitizerMode::Record, 4, 4096);
        assert!(s.check_read(0, 0, 8, 2, 300, "get").is_none());
        assert!(s.check_read(0, 0, 8, 3, 350, "get").is_none());
        assert_ne!(
            s.shadows[0].readers[0].load(Ordering::Acquire) & VECTOR_FLAG,
            0,
            "two unordered readers must inflate the word"
        );
        s.raise(1, 3, 360); // PE 1 knows PE 3 past its read — but not PE 2.
        let r = s.record_write(0, 0, 8, 1, 500, false, "put").expect("race with PE 2's read");
        assert_eq!(r.kind, HazardKind::MissingSync);
        assert_eq!(r.conflict_pe, 2);
        assert_eq!(r.t_conflict, 300);
        assert_eq!(r.t_known, 0);
    }

    #[test]
    fn ordered_readers_keep_the_scalar_representation() {
        // PE 3's read happens-after PE 2's (it synchronized past t=300), so
        // replacing the scalar record is sound and no vector is allocated.
        let s = Sanitizer::new(SanitizerMode::Record, 4, 4096);
        assert!(s.check_read(0, 0, 8, 2, 300, "get").is_none());
        s.raise(3, 2, 310);
        assert!(s.check_read(0, 0, 8, 3, 350, "get").is_none());
        assert_eq!(
            s.shadows[0].readers[0].load(Ordering::Acquire) & VECTOR_FLAG,
            0,
            "ordered readers stay on the scalar fast path"
        );
        assert!(s.shadows[0].read_vecs.lock().is_empty());
        // The surviving scalar record is PE 3's read, and it is checked.
        let r = s.record_write(0, 0, 8, 1, 500, false, "put").expect("race with PE 3's read");
        assert_eq!(r.conflict_pe, 3);
    }

    #[test]
    fn inflated_word_keeps_accumulating_readers() {
        let s = Sanitizer::new(SanitizerMode::Record, 4, 4096);
        assert!(s.check_read(0, 0, 4, 1, 100, "get").is_none());
        assert!(s.check_read(0, 4, 4, 2, 110, "get").is_none()); // inflates
        assert!(s.check_read(0, 0, 2, 3, 120, "get").is_none()); // joins the vector
                                                                 // A writer synchronized with nobody conflicts with the *first*
                                                                 // still-racing reader in PE order; disjoint bytes are exempt.
        let r = s.record_write(0, 0, 4, 0, 200, false, "local write").expect("race");
        assert_eq!(r.conflict_pe, 1, "byte-overlap check applies per vector entry");
        s.raise(0, 1, 150);
        s.raise(0, 3, 150);
        assert!(
            s.record_write(0, 0, 4, 0, 210, false, "local write").is_none(),
            "PE 2's bytes [4,8) are disjoint from this write"
        );
    }

    #[test]
    fn wait_edge_via_last_writer_suppresses() {
        let s = Sanitizer::new(SanitizerMode::Record, 4, 4096);
        s.record_write(0, 128, 8, 3, 900, false, "put");
        let (w, t) = s.last_writer(0, 128).unwrap();
        s.raise(0, w, t);
        s.join_rows(0, w);
        assert!(s.check_read(0, 128, 8, 0, 950, "local read").is_none());
    }
}
