//! Machine description: topology, wire parameters, compute speed.

use crate::fault::FaultPlan;
use crate::sanitizer::SanitizerMode;
use crate::stream::StreamConfig;

/// Parameters of one class of link (inter-node wire or intra-node memory bus).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// One-way wire latency in nanoseconds (time of flight, not occupancy).
    pub latency_ns: f64,
    /// Sustained bandwidth in bytes per nanosecond (1 byte/ns == ~0.93 GiB/s).
    pub bytes_per_ns: f64,
}

impl LinkParams {
    /// Pure serialization time for `bytes` on this link (no latency term).
    #[inline]
    pub fn occupancy_ns(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bytes_per_ns
    }
}

/// Wire-level parameters of the interconnect and the intra-node fabric.
///
/// These are raw hardware numbers; per-library software overheads (issue cost,
/// completion cost, active-message processing) belong to conduit profiles in
/// `pgas-conduit`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParams {
    /// Inter-node link (InfiniBand / Gemini / Aries ...).
    pub inter: LinkParams,
    /// Intra-node transfers (shared memory bus).
    pub intra: LinkParams,
    /// Fixed NIC processing time charged per message that crosses it, ns.
    pub nic_msg_overhead_ns: f64,
    /// Hardware time for a remote atomic at the target NIC/memory controller.
    pub amo_ns: f64,
}

/// Compute-speed parameters used by application kernels (Himeno, DHT) to
/// charge local computation to the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeParams {
    /// Sustained floating-point rate of one core, in flops per nanosecond
    /// (i.e. GFLOP/s).
    pub core_gflops: f64,
    /// Fixed cost of a local function call / loop iteration bookkeeping, ns.
    pub local_op_ns: f64,
}

/// Full description of a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Human-readable platform name ("stampede", "titan", ...).
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Cores (= PEs) per node.
    pub cores_per_node: usize,
    /// Symmetric heap size per PE, in bytes (rounded up to 8).
    pub heap_bytes: usize,
    pub wire: WireParams,
    pub compute: ComputeParams,
    /// Stack size for PE threads, bytes.
    pub stack_bytes: usize,
    /// Record a virtual-time execution trace (see `crate::trace`).
    pub trace: bool,
    /// Record per-op metrics (see `crate::metrics`). Off by default.
    pub metrics: bool,
    /// Width of the metrics registry's virtual-time windows, ns. `0` (the
    /// default) records no windowed series; non-zero additionally buckets
    /// `observe_windowed`/`count_windowed` feeds into fixed windows for
    /// deterministic percentile-over-time / throughput-over-time series.
    /// Only meaningful when metrics are enabled.
    pub metrics_window_ns: u64,
    /// Race & sync sanitizer mode (see `crate::sanitizer`). Off by default.
    pub sanitizer: SanitizerMode,
    /// Deterministic fault schedule (see `crate::fault`). `None` by default;
    /// a zero plan behaves identically to `None`.
    pub faults: Option<FaultPlan>,
    /// Live streaming snapshot channel (see `crate::stream`). `None` by
    /// default; there is no environment default — a stream needs a consumer
    /// holding its ring, so only code can usefully enable one.
    pub stream: Option<StreamConfig>,
    /// Grant NIC reservations in virtual-time order `(start, pe)` instead of
    /// real-thread arrival order. Off by default: it serializes contended
    /// reservations in *real* time, and it assumes a workload whose real
    /// blocking waits are barriers/`wait_on` (true of the benchmark probes).
    /// Regression probes enable it so contended runs digest bit-identically.
    pub deterministic_nic: bool,
    /// Worker-pool limit: at most this many PE threads are *runnable* at
    /// once, admitted in `(virtual clock, pe)` order (see `crate::sched`).
    /// `None` defers to the `PGAS_WORKERS` environment default; `Some(0)`
    /// (or any value `>= total_pes`) pins legacy one-thread-per-PE mode,
    /// beating the environment. Simulation outcomes are bit-identical for
    /// every setting; the limit only bounds host-side concurrency so
    /// paper-scale (1024/2048-image) and larger jobs fit the host.
    pub workers: Option<usize>,
    /// Default for conduit small-op aggregation (per-destination coalescing
    /// and active-message fast paths, see `pgas-conduit`). `None` defers to
    /// the `PGAS_COALESCE` environment default (which itself defaults to
    /// off); an explicit choice — either way — beats the environment. A
    /// `with_forced_aggregation` thread override beats both, applied by
    /// `Machine::new`. The machine itself aggregates nothing; conduits read
    /// the resolved default back from the machine they attach to.
    pub aggregation: Option<bool>,
    /// Default for conduit end-to-end payload checksums (CRC32 computed at
    /// submit, verified at apply — see `pgas-conduit::integrity`). `None`
    /// defers to the `PGAS_CHECKSUM` environment default (which itself
    /// defaults to off); an explicit choice — either way — beats the
    /// environment. A `with_forced_checksums` thread override beats both,
    /// applied by `Machine::new`. Checksums charge no virtual time, so
    /// enabling them changes no digest; they turn injected corruption into
    /// typed `PayloadCorrupt` retries instead of generic link rejects.
    pub checksums: Option<bool>,
}

impl MachineConfig {
    /// Total number of PEs.
    pub fn total_pes(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Override the number of nodes (keeps other parameters).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Override cores per node.
    pub fn with_cores_per_node(mut self, cores: usize) -> Self {
        self.cores_per_node = cores;
        self
    }

    /// Override the per-PE symmetric heap size.
    pub fn with_heap_bytes(mut self, bytes: usize) -> Self {
        self.heap_bytes = bytes;
        self
    }

    /// Enable virtual-time execution tracing.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enable the per-op metrics registry.
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Bucket windowed metric feeds into fixed `window_ns`-wide virtual-time
    /// windows (see the `metrics_window_ns` field). Implies nothing about
    /// the enable flag — combine with [`MachineConfig::with_metrics`].
    pub fn with_metrics_window(mut self, window_ns: u64) -> Self {
        self.metrics_window_ns = window_ns;
        self
    }

    /// Set the race & sync sanitizer mode.
    pub fn with_sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.sanitizer = mode;
        self
    }

    /// Attach a deterministic fault schedule. An explicit plan — even
    /// [`FaultPlan::none`] — beats the `PGAS_FAULT_PLAN` environment default.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attach a live streaming snapshot channel. A `with_forced_stream`
    /// thread override beats this, mirroring trace/metrics resolution.
    pub fn with_stream(mut self, stream: StreamConfig) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Order contended NIC reservations by virtual time (see the
    /// `deterministic_nic` field). Used by the benchmark probes.
    pub fn with_deterministic_nic(mut self) -> Self {
        self.deterministic_nic = true;
        self
    }

    /// Bound runnable PE threads to `n` worker slots (see the `workers`
    /// field). An explicit choice — including `0`, meaning unbounded legacy
    /// mode — beats the `PGAS_WORKERS` environment default.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Override the PE thread stack size (large jobs shrink it so thousands
    /// of PE threads fit the host's address-space and memory budget).
    pub fn with_stack_bytes(mut self, bytes: usize) -> Self {
        self.stack_bytes = bytes;
        self
    }

    /// Set the conduit small-op aggregation default (see the `aggregation`
    /// field). An explicit choice — either way — beats the `PGAS_COALESCE`
    /// environment default.
    pub fn with_aggregation(mut self, on: bool) -> Self {
        self.aggregation = Some(on);
        self
    }

    /// The sanitizer mode a machine built from this config will run with.
    ///
    /// An explicit [`Self::with_sanitizer`] choice always stands; when the
    /// config is at the `Off` default, the process-wide `PGAS_SANITIZER`
    /// environment variable (read once, at first machine build) supplies the
    /// default. A `with_forced_mode` thread override beats both, but that is
    /// applied by `Machine::new`, not here.
    pub fn sanitizer_mode(&self) -> SanitizerMode {
        match self.sanitizer {
            SanitizerMode::Off => crate::sanitizer::env_default().unwrap_or(SanitizerMode::Off),
            explicit => explicit,
        }
    }

    /// Whether a machine built from this config will record a trace.
    ///
    /// `with_trace(true)` always enables; when the config is at the `false`
    /// default, the process-wide `PGAS_TRACE` environment variable (read
    /// once, at first use) supplies the default. A `with_forced_tracing`
    /// thread override beats both, but that is applied by `Machine::new`,
    /// not here.
    pub fn trace_enabled(&self) -> bool {
        self.trace || crate::trace::env_default().unwrap_or(false)
    }

    /// Whether a machine built from this config will record metrics.
    ///
    /// Resolution mirrors [`Self::trace_enabled`], with the `PGAS_METRICS`
    /// environment variable and the `with_forced_metrics` thread override.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics || crate::metrics::env_default().unwrap_or(false)
    }

    /// The worker-pool limit a machine built from this config will run with
    /// (`None` = legacy one-thread-per-PE).
    ///
    /// An explicit [`Self::with_workers`] choice always stands (including an
    /// explicit `0`, which pins legacy mode); when the config carries no
    /// limit, the process-wide `PGAS_WORKERS` environment variable (read
    /// once, at first use) supplies the default. A `with_forced_workers`
    /// thread override beats both, but that is applied by `Machine::new`,
    /// not here. `0` and anything `>= total_pes` resolve to `None`: a pool
    /// that admits every PE at once is exactly legacy mode, so no scheduler
    /// state is built and the legacy path is untouched.
    pub fn worker_limit(&self) -> Option<usize> {
        self.workers.or_else(crate::sched::env_default).filter(|&w| w > 0 && w < self.total_pes())
    }

    /// Set the conduit payload-checksum default (see the `checksums` field).
    /// An explicit choice — either way — beats the `PGAS_CHECKSUM`
    /// environment default.
    pub fn with_checksums(mut self, on: bool) -> Self {
        self.checksums = Some(on);
        self
    }

    /// The conduit payload-checksum default a machine built from this config
    /// will advertise (`false` = conduits neither compute nor verify CRCs).
    ///
    /// An explicit [`Self::with_checksums`] choice always stands; when the
    /// config carries no choice, the process-wide `PGAS_CHECKSUM`
    /// environment variable (read once, at first use) supplies the default.
    /// A `with_forced_checksums` thread override beats both, but that is
    /// applied by `Machine::new`, not here.
    pub fn checksums_default(&self) -> bool {
        self.checksums.or_else(crate::integrity::env_default).unwrap_or(false)
    }

    /// The conduit aggregation default a machine built from this config will
    /// advertise (`false` = conduits do not coalesce unless explicitly asked
    /// to).
    ///
    /// An explicit [`Self::with_aggregation`] choice always stands; when the
    /// config carries no choice, the process-wide `PGAS_COALESCE`
    /// environment variable (read once, at first use) supplies the default.
    /// A `with_forced_aggregation` thread override beats both, but that is
    /// applied by `Machine::new`, not here.
    pub fn aggregation_default(&self) -> bool {
        self.aggregation.or_else(crate::aggregate::env_default).unwrap_or(false)
    }

    /// The fault plan a machine built from this config will run with.
    ///
    /// An explicit [`Self::with_faults`] choice always stands (including an
    /// explicit zero plan, which disables faults); when the config carries no
    /// plan, the process-wide `PGAS_FAULT_PLAN` environment variable (read
    /// once, at first use) supplies the default. A `with_forced_plan` thread
    /// override beats both, but that is applied by `Machine::new`, not here.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.clone().or_else(crate::fault::env_default)
    }

    /// Validate the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("machine must have at least one node".into());
        }
        if self.cores_per_node == 0 {
            return Err("machine must have at least one core per node".into());
        }
        if self.heap_bytes < 64 {
            return Err("per-PE heap must be at least 64 bytes".into());
        }
        if !(self.wire.inter.latency_ns > 0.0 && self.wire.inter.bytes_per_ns > 0.0) {
            return Err("inter-node link parameters must be positive".into());
        }
        if !(self.wire.intra.latency_ns > 0.0 && self.wire.intra.bytes_per_ns > 0.0) {
            return Err("intra-node link parameters must be positive".into());
        }
        if self.total_pes() > crate::machine::MAX_PES {
            return Err(format!(
                "{} PEs exceeds the supported maximum of {}",
                self.total_pes(),
                crate::machine::MAX_PES
            ));
        }
        if let Some(plan) = &self.faults {
            plan.validate(self.total_pes(), self.nodes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;

    #[test]
    fn occupancy_scales_linearly() {
        let link = LinkParams { latency_ns: 1000.0, bytes_per_ns: 2.0 };
        assert_eq!(link.occupancy_ns(0), 0.0);
        assert_eq!(link.occupancy_ns(4096), 2048.0);
        assert_eq!(link.occupancy_ns(8192), 2.0 * link.occupancy_ns(4096));
    }

    #[test]
    fn presets_validate() {
        for cfg in [
            platforms::stampede(2, 16),
            platforms::titan(64, 16),
            platforms::cray_xc30(2, 16),
            platforms::generic_smp(8),
        ] {
            cfg.validate().unwrap_or_else(|e| panic!("{}: {}", cfg.name, e));
        }
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let mut cfg = platforms::generic_smp(4);
        cfg.nodes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = platforms::generic_smp(4);
        cfg.cores_per_node = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = platforms::generic_smp(4);
        cfg.heap_bytes = 8;
        assert!(cfg.validate().is_err());

        let mut cfg = platforms::generic_smp(4);
        cfg.wire.inter.latency_ns = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builder_overrides_apply() {
        let cfg = platforms::titan(4, 8).with_nodes(9).with_cores_per_node(3).with_heap_bytes(4096);
        assert_eq!(cfg.nodes, 9);
        assert_eq!(cfg.cores_per_node, 3);
        assert_eq!(cfg.heap_bytes, 4096);
        assert_eq!(cfg.total_pes(), 27);
    }

    #[test]
    fn explicit_sanitizer_choice_beats_env_default() {
        // with_sanitizer must stand no matter what PGAS_SANITIZER says —
        // tests that deliberately request Panic (or Record) rely on it.
        let cfg = platforms::generic_smp(2).with_sanitizer(SanitizerMode::Panic);
        assert_eq!(cfg.sanitizer_mode(), SanitizerMode::Panic);
        let cfg = platforms::generic_smp(2).with_sanitizer(SanitizerMode::Record);
        assert_eq!(cfg.sanitizer_mode(), SanitizerMode::Record);
    }

    #[test]
    fn env_default_applies_when_config_is_off() {
        // Race-free env proof: read the variable (never write it) and assert
        // the config resolves to exactly what it says. Locally the variable
        // is normally unset -> Off; in the PGAS_SANITIZER=record CI job this
        // asserts the env-driven default reaches the config with no code
        // changes.
        let expected = std::env::var("PGAS_SANITIZER")
            .ok()
            .as_deref()
            .and_then(SanitizerMode::parse)
            .unwrap_or(SanitizerMode::Off);
        let cfg = platforms::generic_smp(2);
        assert_eq!(cfg.sanitizer, SanitizerMode::Off, "presets default to Off");
        assert_eq!(cfg.sanitizer_mode(), expected);
    }

    #[test]
    fn explicit_fault_plan_beats_env_default() {
        // An explicit plan — including an explicit zero plan — must stand no
        // matter what PGAS_FAULT_PLAN says: timing-exact tests rely on
        // with_faults(FaultPlan::none()) to opt out of the env-driven plan.
        let cfg = platforms::generic_smp(2).with_faults(FaultPlan::none());
        assert!(cfg.fault_plan().unwrap().is_zero());
        let cfg = platforms::generic_smp(2).with_faults(FaultPlan::transient_drops(9, 0.25));
        assert_eq!(cfg.fault_plan().unwrap().drop_prob, 0.25);
    }

    #[test]
    fn env_fault_plan_applies_when_config_has_none() {
        // Race-free env proof, mirroring the sanitizer test above: read the
        // variable (never write it) and assert the config resolves to exactly
        // what it says. Locally the variable is normally unset -> None; in
        // the PGAS_FAULT_PLAN CI job this asserts the env-driven plan reaches
        // the config with no code changes.
        let expected = std::env::var("PGAS_FAULT_PLAN").ok().as_deref().and_then(FaultPlan::parse);
        let cfg = platforms::generic_smp(2);
        assert!(cfg.faults.is_none(), "presets default to no plan");
        assert_eq!(cfg.fault_plan(), expected);
    }

    #[test]
    fn validate_checks_fault_plan() {
        let cfg = platforms::generic_smp(4).with_faults(FaultPlan::transient_drops(1, 2.0));
        assert!(cfg.validate().is_err());
        let cfg = platforms::generic_smp(4).with_faults(FaultPlan::new(1).with_pe_failure(7, 10));
        assert!(cfg.validate().is_err(), "failure of a PE the machine does not have");
        let cfg = platforms::generic_smp(4).with_faults(FaultPlan::transient_drops(1, 0.01));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn env_trace_and_metrics_apply_when_config_is_off() {
        // Race-free env proof, mirroring the sanitizer/fault tests: read the
        // variables (never write them) and assert the config resolves to
        // exactly what they say. Locally both are normally unset -> false;
        // in the PGAS_TRACE/PGAS_METRICS CI job this asserts the env-driven
        // defaults reach the config with no code changes.
        let parse = |var: &str| {
            std::env::var(var)
                .ok()
                .and_then(|v| match v.trim().to_ascii_lowercase().as_str() {
                    "1" | "true" | "on" | "yes" => Some(true),
                    "0" | "false" | "off" | "no" => Some(false),
                    _ => None,
                })
                .unwrap_or(false)
        };
        let cfg = platforms::generic_smp(2);
        assert!(!cfg.trace, "presets default to untraced");
        assert!(!cfg.metrics, "presets default to no metrics");
        assert_eq!(cfg.trace_enabled(), parse("PGAS_TRACE"));
        assert_eq!(cfg.metrics_enabled(), parse("PGAS_METRICS"));
        // An explicit true always stands.
        assert!(platforms::generic_smp(2).with_trace(true).trace_enabled());
        assert!(platforms::generic_smp(2).with_metrics(true).metrics_enabled());
    }

    #[test]
    fn env_aggregation_applies_when_config_has_none() {
        // Race-free env proof, mirroring the trace/metrics tests: read the
        // variable (never write it) and assert the config resolves to
        // exactly what it says. Locally the variable is normally unset ->
        // false; in the PGAS_COALESCE=on CI job this asserts the env-driven
        // default reaches the config with no code changes.
        let expected = std::env::var("PGAS_COALESCE")
            .ok()
            .and_then(|v| match v.trim().to_ascii_lowercase().as_str() {
                "1" | "true" | "on" | "yes" => Some(true),
                "0" | "false" | "off" | "no" => Some(false),
                _ => None,
            })
            .unwrap_or(false);
        let cfg = platforms::generic_smp(2);
        assert!(cfg.aggregation.is_none(), "presets default to no choice");
        assert_eq!(cfg.aggregation_default(), expected);
        // An explicit choice always stands, either way.
        assert!(platforms::generic_smp(2).with_aggregation(true).aggregation_default());
        assert!(!platforms::generic_smp(2).with_aggregation(false).aggregation_default());
    }

    #[test]
    fn sanitizer_mode_names_parse() {
        assert_eq!(SanitizerMode::parse("off"), Some(SanitizerMode::Off));
        assert_eq!(SanitizerMode::parse(" Record\n"), Some(SanitizerMode::Record));
        assert_eq!(SanitizerMode::parse("PANIC"), Some(SanitizerMode::Panic));
        assert_eq!(SanitizerMode::parse("tsan"), None);
        assert_eq!(SanitizerMode::parse(""), None);
    }
}
