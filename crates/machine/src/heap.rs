//! Per-PE remotely accessible memory ("symmetric heap" storage).
//!
//! Any PE may read or write any other PE's heap at any time — that is the
//! whole point of a PGAS machine — so the backing store must tolerate
//! concurrent conflicting access without undefined behaviour. We store the
//! heap as a slice of `AtomicU64` words and perform all byte-granularity
//! access through word-level atomics (plain loads/stores for covered words,
//! CAS-merge for partial words). Racy PGAS programs thus map onto well-defined
//! relaxed-atomic races instead of UB.
//!
//! Alongside the data, every word carries a **shadow timestamp**: the maximum
//! virtual completion time of remote writes that touched it. Readers take the
//! max over the region they read and fold it into their own clock, which
//! propagates causality through memory (Lamport clocks through the heap).
//!
//! Out-of-bounds access panics: it is the simulator's analogue of a segfault
//! from a bad remote address.

use std::sync::atomic::{AtomicU64, Ordering};

/// Remotely accessible memory of one PE plus shadow timestamps.
pub struct Heap {
    words: Box<[AtomicU64]>,
    stamps: Box<[AtomicU64]>,
    len_bytes: usize,
}

impl Heap {
    /// Allocate a zeroed heap of at least `len_bytes` (rounded up to 8).
    pub fn new(len_bytes: usize) -> Self {
        let words = len_bytes.div_ceil(8);
        Heap {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            stamps: (0..words).map(|_| AtomicU64::new(0)).collect(),
            len_bytes: words * 8,
        }
    }

    /// Usable size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len_bytes
    }

    /// True when the heap has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len_bytes == 0
    }

    #[inline]
    fn check(&self, off: usize, len: usize, what: &str) {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len_bytes),
            "remote {what} out of bounds: offset {off} + len {len} > heap size {}",
            self.len_bytes
        );
    }

    /// Copy `src` into the heap at byte offset `off`.
    pub fn write_bytes(&self, off: usize, src: &[u8]) {
        self.check(off, src.len(), "write");
        let mut pos = off;
        let mut rest = src;
        // Leading partial word.
        if !pos.is_multiple_of(8) {
            let in_word = pos % 8;
            let take = rest.len().min(8 - in_word);
            merge_word(&self.words[pos / 8], in_word, &rest[..take]);
            pos += take;
            rest = &rest[take..];
        }
        // Full words.
        let mut chunks = rest.chunks_exact(8);
        for chunk in &mut chunks {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            self.words[pos / 8].store(u64::from_ne_bytes(b), Ordering::Release);
            pos += 8;
        }
        // Trailing partial word.
        let tail = chunks.remainder();
        if !tail.is_empty() {
            merge_word(&self.words[pos / 8], 0, tail);
        }
    }

    /// Copy heap bytes at offset `off` into `dst`.
    pub fn read_bytes(&self, off: usize, dst: &mut [u8]) {
        self.check(off, dst.len(), "read");
        let mut pos = off;
        let mut rest = &mut dst[..];
        if !pos.is_multiple_of(8) {
            let in_word = pos % 8;
            let take = rest.len().min(8 - in_word);
            let w = self.words[pos / 8].load(Ordering::Acquire).to_ne_bytes();
            rest[..take].copy_from_slice(&w[in_word..in_word + take]);
            pos += take;
            rest = &mut rest[take..];
        }
        let mut chunks = rest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.words[pos / 8].load(Ordering::Acquire).to_ne_bytes());
            pos += 8;
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let w = self.words[pos / 8].load(Ordering::Acquire).to_ne_bytes();
            let n = tail.len();
            tail.copy_from_slice(&w[..n]);
        }
    }

    /// Direct access to the 8-byte atomic word at byte offset `off`
    /// (must be 8-aligned). This is the substrate for remote atomics and
    /// `wait_until`.
    #[inline]
    pub fn atomic64(&self, off: usize) -> &AtomicU64 {
        self.check(off, 8, "atomic");
        assert!(off.is_multiple_of(8), "atomic access requires 8-byte alignment, got offset {off}");
        &self.words[off / 8]
    }

    /// Record that a remote write covering `[off, off+len)` completed at
    /// virtual time `t`.
    pub fn stamp_range(&self, off: usize, len: usize, t: u64) {
        if len == 0 {
            return;
        }
        self.check(off, len, "stamp");
        for w in &self.stamps[off / 8..(off + len).div_ceil(8)] {
            w.fetch_max(t, Ordering::AcqRel);
        }
    }

    /// Maximum remote-write completion time over `[off, off+len)`.
    pub fn max_stamp(&self, off: usize, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        self.check(off, len, "stamp read");
        self.stamps[off / 8..(off + len).div_ceil(8)]
            .iter()
            .map(|w| w.load(Ordering::Acquire))
            .max()
            .unwrap_or(0)
    }
}

/// CAS-merge `src` into `word` starting at byte `in_word`.
fn merge_word(word: &AtomicU64, in_word: usize, src: &[u8]) {
    debug_assert!(in_word + src.len() <= 8);
    let mut cur = word.load(Ordering::Acquire);
    loop {
        let mut b = cur.to_ne_bytes();
        b[in_word..in_word + src.len()].copy_from_slice(src);
        match word.compare_exchange_weak(
            cur,
            u64::from_ne_bytes(b),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_aligned() {
        let h = Heap::new(64);
        let data: Vec<u8> = (0..32).collect();
        h.write_bytes(8, &data);
        let mut out = vec![0u8; 32];
        h.read_bytes(8, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_unaligned_offsets_and_lengths() {
        let h = Heap::new(128);
        for off in 0..16 {
            for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 23, 40] {
                let data: Vec<u8> =
                    (0..len as u8).map(|b| b.wrapping_mul(37).wrapping_add(off as u8)).collect();
                h.write_bytes(off, &data);
                let mut out = vec![0xAAu8; len];
                h.read_bytes(off, &mut out);
                assert_eq!(out, data, "off={off} len={len}");
            }
        }
    }

    #[test]
    fn partial_write_preserves_neighbours() {
        let h = Heap::new(32);
        h.write_bytes(0, &[0xFF; 24]);
        h.write_bytes(5, &[1, 2, 3, 4, 5, 6]); // crosses a word boundary
        let mut out = [0u8; 24];
        h.read_bytes(0, &mut out);
        assert_eq!(&out[..5], &[0xFF; 5]);
        assert_eq!(&out[5..11], &[1, 2, 3, 4, 5, 6]);
        assert_eq!(&out[11..], &[0xFF; 13]);
    }

    #[test]
    fn atomic_word_shares_storage_with_bytes() {
        let h = Heap::new(64);
        h.atomic64(16).store(u64::from_ne_bytes(*b"ABCDEFGH"), Ordering::Release);
        let mut out = [0u8; 8];
        h.read_bytes(16, &mut out);
        assert_eq!(&out, b"ABCDEFGH");
    }

    #[test]
    fn stamps_take_max_over_region() {
        let h = Heap::new(64);
        assert_eq!(h.max_stamp(0, 64), 0);
        h.stamp_range(0, 8, 100);
        h.stamp_range(8, 8, 250);
        h.stamp_range(8, 8, 200); // older write must not regress the stamp
        assert_eq!(h.max_stamp(0, 8), 100);
        assert_eq!(h.max_stamp(8, 8), 250);
        assert_eq!(h.max_stamp(0, 16), 250);
        assert_eq!(h.max_stamp(16, 48), 0);
        // Unaligned span covering a stamped word sees its stamp.
        assert_eq!(h.max_stamp(7, 2), 250);
    }

    #[test]
    fn len_rounds_up_to_words() {
        assert_eq!(Heap::new(1).len(), 8);
        assert_eq!(Heap::new(8).len(), 8);
        assert_eq!(Heap::new(9).len(), 16);
        assert!(!Heap::new(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        Heap::new(16).write_bytes(12, &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "8-byte alignment")]
    fn misaligned_atomic_panics() {
        Heap::new(16).atomic64(4);
    }

    #[test]
    fn concurrent_adjacent_byte_writes_do_not_tear() {
        // Two threads hammer adjacent bytes within one word; both values
        // must survive (the CAS merge must not lose either).
        use std::sync::Arc;
        let h = Arc::new(Heap::new(8));
        let h1 = h.clone();
        let h2 = h.clone();
        let t1 = std::thread::spawn(move || {
            for i in 0..10_000u32 {
                h1.write_bytes(1, &[(i % 251) as u8]);
            }
        });
        let t2 = std::thread::spawn(move || {
            for i in 0..10_000u32 {
                h2.write_bytes(2, &[(i % 241) as u8]);
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let mut out = [0u8; 3];
        h.read_bytes(0, &mut out);
        assert_eq!(out[0], 0);
        assert_eq!(out[1], (9_999 % 251) as u8);
        assert_eq!(out[2], (9_999 % 241) as u8);
    }
}
