//! Live streaming snapshots: a bounded ring-buffer channel that samples the
//! machine's observable state at a virtual-time cadence *while the
//! simulation runs*, without moving a single virtual clock.
//!
//! The channel exists for tools like `examples/pgas_top.rs`: a consumer
//! thread drains [`StreamSample`]s out of a [`SnapshotRing`] and renders a
//! refreshing view of per-PE clocks, live metric counters, each PE's most
//! recent span and per-NIC traffic. Because PEs advance their clocks
//! concurrently and samples are taken by whichever PE thread first crosses a
//! cadence boundary, the *set* of samples depends on host scheduling — the
//! stream is a monitoring surface, not a deterministic artifact. What *is*
//! guaranteed (and asserted in the test suite, with the same contract as the
//! observability-off check) is that attaching a stream changes no virtual
//! clock: sampling only ever reads.
//!
//! Enabling resolves like tracing and metrics, minus the environment
//! default — a stream without a consumer holding the ring is useless, so
//! there is nothing sensible an env var could do. A thread-forced override
//! ([`with_forced_stream`]) beats `MachineConfig::stream`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::launch::NicSnapshot;
use crate::metrics::WindowEntry;
use crate::trace::{ReqRecord, Span};

/// One sample of the machine's observable state at (or just past) a cadence
/// boundary in virtual time.
#[derive(Debug, Clone)]
pub struct StreamSample {
    /// Monotone sample index, starting at 0.
    pub seq: u64,
    /// Virtual time of the sampling PE when the sample was taken, ns.
    pub t_ns: u64,
    /// Every PE's virtual clock at sampling time, ns.
    pub clocks: Vec<u64>,
    /// Live counter totals (summed over PEs and peers), sorted by name.
    /// Empty when the machine runs without metrics.
    pub counters: Vec<(&'static str, u64)>,
    /// Each PE's most recently recorded span, if any. Empty when the
    /// machine runs without tracing.
    pub inflight: Vec<Option<Span>>,
    /// Per-node NIC traffic so far.
    pub nics: Vec<NicSnapshot>,
    /// The live windowed series of the metric named by
    /// [`StreamConfig::with_window_metric`], merged across PEs — what
    /// `pgas_top -- serve` renders p50/p99/p999 and burn rates from. Empty
    /// unless the machine records windowed metrics and a metric was named.
    pub windows: Vec<WindowEntry>,
    /// Every request completed so far, sorted `(pe, id)` — the live feed of
    /// `pgas_top -- serve`'s "top tail causes" panel. Empty unless the
    /// machine is traced, the workload marks requests, and the stream opted
    /// in via [`StreamConfig::with_requests`].
    pub requests: Vec<ReqRecord>,
}

#[derive(Debug, Default)]
struct RingInner {
    samples: VecDeque<StreamSample>,
    /// Samples evicted because the consumer fell behind.
    dropped: u64,
    /// Samples pushed over the ring's lifetime.
    total: u64,
}

/// Bounded MPSC ring carrying [`StreamSample`]s from the simulation to a
/// consumer. When full, the oldest sample is evicted (and counted), so a
/// slow consumer degrades to "recent view only" instead of stalling PEs.
#[derive(Debug)]
pub struct SnapshotRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl SnapshotRing {
    pub fn new(capacity: usize) -> SnapshotRing {
        assert!(capacity > 0, "snapshot ring needs a non-zero capacity");
        SnapshotRing { capacity, inner: Mutex::new(RingInner::default()) }
    }

    /// Append a sample, evicting the oldest if the ring is full.
    pub fn push(&self, sample: StreamSample) {
        let mut inner = self.inner.lock();
        if inner.samples.len() == self.capacity {
            inner.samples.pop_front();
            inner.dropped += 1;
        }
        inner.samples.push_back(sample);
        inner.total += 1;
    }

    /// Take every buffered sample, oldest first.
    pub fn drain(&self) -> Vec<StreamSample> {
        self.inner.lock().samples.drain(..).collect()
    }

    /// Clone the most recent sample without consuming anything.
    pub fn latest(&self) -> Option<StreamSample> {
        self.inner.lock().samples.back().cloned()
    }

    /// Buffered (unconsumed) sample count.
    pub fn len(&self) -> usize {
        self.inner.lock().samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples lost to ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Samples produced over the ring's lifetime (buffered + consumed +
    /// dropped).
    pub fn total(&self) -> u64 {
        self.inner.lock().total
    }
}

/// A registered push consumer: called with every sample as it is taken, on
/// the sampling PE's thread, right after the sample lands in the ring. Must
/// be cheap and non-blocking — it runs inside the simulation.
pub type StreamConsumer = Arc<dyn Fn(&StreamSample) + Send + Sync>;

/// Configuration of the streaming snapshot channel: how often to sample (in
/// virtual nanoseconds) and the ring the samples land in. Clone-cheap — all
/// clones share the same ring (and consumer list), which is how the consumer
/// sees the samples.
#[derive(Clone)]
pub struct StreamConfig {
    cadence_ns: u64,
    ring: Arc<SnapshotRing>,
    consumers: Arc<Mutex<Vec<StreamConsumer>>>,
    /// Windowed metric to sample into [`StreamSample::windows`], if any.
    window_metric: Option<&'static str>,
    /// Sample completed request records into [`StreamSample::requests`].
    requests: bool,
}

impl std::fmt::Debug for StreamConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamConfig")
            .field("cadence_ns", &self.cadence_ns)
            .field("ring", &self.ring)
            .field("consumers", &self.consumers.lock().len())
            .finish()
    }
}

impl StreamConfig {
    /// A channel sampling every `cadence_ns` virtual nanoseconds into a
    /// fresh ring holding at most `capacity` samples.
    pub fn new(cadence_ns: u64, capacity: usize) -> StreamConfig {
        assert!(cadence_ns > 0, "stream cadence must be positive");
        StreamConfig {
            cadence_ns,
            ring: Arc::new(SnapshotRing::new(capacity)),
            consumers: Arc::new(Mutex::new(Vec::new())),
            window_metric: None,
            requests: false,
        }
    }

    /// Sample the live windowed series of histogram `name` into every
    /// [`StreamSample`] (requires the machine to record windowed metrics —
    /// see `MachineConfig::with_metrics_window`). Like every stream read,
    /// this moves no virtual clock.
    pub fn with_window_metric(mut self, name: &'static str) -> Self {
        self.window_metric = Some(name);
        self
    }

    /// The windowed metric this stream samples, if any.
    pub fn window_metric(&self) -> Option<&'static str> {
        self.window_metric
    }

    /// Sample completed request records into every [`StreamSample`] (needs
    /// tracing and request markers to produce anything). Off by default —
    /// cloning every completed request per sample is only worth it for
    /// consumers that attribute tails live.
    pub fn with_requests(mut self) -> Self {
        self.requests = true;
        self
    }

    /// Does this stream sample request records?
    pub fn requests_enabled(&self) -> bool {
        self.requests
    }

    /// Sampling cadence in virtual nanoseconds.
    pub fn cadence_ns(&self) -> u64 {
        self.cadence_ns
    }

    /// The shared ring; hold a clone of this on the consumer side.
    pub fn ring(&self) -> Arc<SnapshotRing> {
        Arc::clone(&self.ring)
    }

    /// Register a push consumer that sees every sample as it is taken —
    /// the subscription point external dashboards (and `pgas_top`'s live
    /// availability series) hang off. Consumers registered after the
    /// machine is built still see subsequent samples: the machine shares
    /// this list, it does not copy it.
    pub fn subscribe(&self, consumer: StreamConsumer) {
        self.consumers.lock().push(consumer);
    }

    /// Builder form of [`Self::subscribe`].
    pub fn with_consumer(self, consumer: StreamConsumer) -> Self {
        self.subscribe(consumer);
        self
    }

    /// Fan a freshly pushed sample out to every registered consumer.
    pub(crate) fn notify_consumers(&self, sample: &StreamSample) {
        for c in self.consumers.lock().iter() {
            c(sample);
        }
    }

    /// Number of registered push consumers.
    pub fn consumer_count(&self) -> usize {
        self.consumers.lock().len()
    }
}

// ---------------------------------------------------------------------------
// Enable resolution: forced (thread) > config. No environment default — a
// stream is only meaningful with a consumer holding the ring.
// ---------------------------------------------------------------------------

thread_local! {
    static FORCED_STREAM: RefCell<Option<StreamConfig>> = const { RefCell::new(None) };
}

pub(crate) fn forced_stream() -> Option<StreamConfig> {
    FORCED_STREAM.with(|c| c.borrow().clone())
}

/// Run `f` with the streaming channel `cfg` forced onto machines constructed
/// on this thread, overriding `MachineConfig::stream`. Restores the previous
/// override on exit (including unwinds).
pub fn with_forced_stream<R>(cfg: StreamConfig, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<StreamConfig>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_STREAM.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = FORCED_STREAM.with(|c| c.borrow_mut().replace(cfg));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> StreamSample {
        StreamSample {
            seq,
            t_ns: seq * 100,
            clocks: vec![seq * 100],
            counters: Vec::new(),
            inflight: Vec::new(),
            nics: Vec::new(),
            windows: Vec::new(),
            requests: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_when_full() {
        let ring = SnapshotRing::new(3);
        for i in 0..5 {
            ring.push(sample(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.total(), 5);
        let got = ring.drain();
        assert_eq!(got.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(ring.is_empty());
        assert_eq!(ring.total(), 5, "drain does not reset the lifetime count");
    }

    #[test]
    fn latest_peeks_without_consuming() {
        let ring = SnapshotRing::new(4);
        ring.push(sample(0));
        ring.push(sample(1));
        assert_eq!(ring.latest().unwrap().seq, 1);
        assert_eq!(ring.len(), 2, "latest() is a peek");
    }

    #[test]
    fn forced_stream_restores_on_exit() {
        assert!(forced_stream().is_none());
        let cfg = StreamConfig::new(1000, 8);
        with_forced_stream(cfg.clone(), || {
            assert_eq!(forced_stream().unwrap().cadence_ns(), 1000);
            let inner = StreamConfig::new(500, 8);
            with_forced_stream(inner, || {
                assert_eq!(forced_stream().unwrap().cadence_ns(), 500);
            });
            assert_eq!(forced_stream().unwrap().cadence_ns(), 1000);
        });
        assert!(forced_stream().is_none());
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_cadence_is_rejected() {
        StreamConfig::new(0, 8);
    }

    #[test]
    fn consumers_see_every_notified_sample_and_are_shared_across_clones() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cfg = StreamConfig::new(100, 8);
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        // Subscribe through a *clone* — the machine holds its own clone of
        // the config, so late subscriptions must still reach it.
        let clone = cfg.clone();
        clone.subscribe(Arc::new(move |s: &StreamSample| {
            seen2.fetch_add(s.seq + 1, Ordering::Relaxed);
        }));
        assert_eq!(cfg.consumer_count(), 1);
        cfg.notify_consumers(&sample(0));
        cfg.notify_consumers(&sample(2));
        assert_eq!(seen.load(Ordering::Relaxed), 1 + 3);
    }
}
