//! Declarative service-level objectives over the windowed metric series.
//!
//! An [`SloSpec`] names a windowed latency histogram (see
//! `MetricsRegistry::observe_windowed`), a violation threshold, and an
//! objective ("99.9% of requests complete under 40 µs"). Evaluating the spec
//! against a finished run's [`MetricsSnapshot`] — or a live window series
//! sampled mid-run — yields an [`SloReport`]: per-window percentiles and
//! violation counts, cumulative error-budget accounting, and fast/slow
//! burn-rate series in the style of multiwindow burn-rate alerting (a burn
//! rate of 1.0 spends exactly the whole budget over the run; the fast window
//! catches sharp regressions like a PE death, the slow window confirms they
//! are sustained). Threshold crossings are recorded as virtual-time
//! [`SloAlert`] events — raised and cleared — so a dip-and-recover story is
//! visible in the report itself.
//!
//! Everything here is integer arithmetic over the deterministic window
//! series (burn rates are fixed-point, ×1000), so two runs with identical
//! virtual behaviour — including runs under different `PGAS_WORKERS` pool
//! sizes — produce bit-identical reports.

use crate::json::Json;
use crate::metrics::{bucket_bound, MetricsSnapshot, WindowEntry};
use crate::tailprof::{Exemplar, ReqPhase};

/// Which burn-rate window an alert fired on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurnWindow {
    Fast,
    Slow,
}

impl BurnWindow {
    pub fn label(self) -> &'static str {
        match self {
            BurnWindow::Fast => "fast",
            BurnWindow::Slow => "slow",
        }
    }
}

/// A declarative SLO: percentile target plus threshold over a windowed
/// latency series.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Human-readable SLO name (appears in reports and alerts).
    pub name: &'static str,
    /// The windowed histogram series the SLO is judged on.
    pub metric: &'static str,
    /// Latency threshold: a request violates the SLO when it exceeds this.
    pub threshold_ns: u64,
    /// Fraction of requests that must meet the threshold (e.g. `0.999`).
    pub objective: f64,
    /// Trailing window count of the fast burn-rate series.
    pub fast_windows: usize,
    /// Trailing window count of the slow burn-rate series.
    pub slow_windows: usize,
    /// Fast alert fires when the fast burn rate reaches this (×1, not ×1000).
    pub fast_burn_alert: f64,
    /// Slow alert fires when the slow burn rate reaches this.
    pub slow_burn_alert: f64,
}

impl SloSpec {
    /// An SLO with the conventional multiwindow burn-rate defaults: the fast
    /// series looks at the last 3 windows and alerts at 14.4× budget burn,
    /// the slow series at the last 12 windows alerting at 6×.
    pub fn new(
        name: &'static str,
        metric: &'static str,
        threshold_ns: u64,
        objective: f64,
    ) -> Self {
        SloSpec {
            name,
            metric,
            threshold_ns,
            objective,
            fast_windows: 3,
            slow_windows: 12,
            fast_burn_alert: 14.4,
            slow_burn_alert: 6.0,
        }
    }

    pub fn with_burn_windows(mut self, fast: usize, slow: usize) -> Self {
        self.fast_windows = fast.max(1);
        self.slow_windows = slow.max(1);
        self
    }

    pub fn with_burn_alerts(mut self, fast: f64, slow: f64) -> Self {
        self.fast_burn_alert = fast;
        self.slow_burn_alert = slow;
        self
    }

    /// Evaluate against a finished run's snapshot (uses the snapshot's
    /// windowed series for [`SloSpec::metric`]).
    pub fn evaluate(&self, snap: &MetricsSnapshot) -> SloReport {
        let series: Vec<&WindowEntry> = snap.window_series(self.metric).collect();
        self.evaluate_series(snap.window_ns, &series)
    }

    /// Evaluate against an explicit window series — the entry point the live
    /// `pgas_top -- serve` view uses with `MetricsRegistry::live_window_series`.
    pub fn evaluate_series(&self, window_ns: u64, series: &[&WindowEntry]) -> SloReport {
        let mut windows: Vec<SloWindow> = Vec::new();
        if let (Some(first), Some(last)) = (series.first(), series.last()) {
            // Densify: a window with no completions still advances the burn
            // series (an idle or dead machine is not burning budget).
            let mut it = series.iter().peekable();
            for w in first.window..=last.window {
                let entry = match it.peek() {
                    Some(e) if e.window == w => Some(*it.next().unwrap()),
                    _ => None,
                };
                let (count, violations, p50, p99, p999) = match entry {
                    Some(e) => (
                        e.count,
                        violations_over(e, self.threshold_ns),
                        e.percentile(0.50),
                        e.percentile(0.99),
                        e.percentile(0.999),
                    ),
                    None => (0, 0, 0, 0, 0),
                };
                windows.push(SloWindow {
                    window: w,
                    start_ns: w * window_ns,
                    count,
                    violations,
                    p50,
                    p99,
                    p999,
                    fast_burn_x1000: 0,
                    slow_burn_x1000: 0,
                    dominant_cause: None,
                });
            }
        }
        // Burn-rate series: trailing violation fraction over the allowed
        // fraction, fixed-point ×1000.
        let allowed = (1.0 - self.objective).max(f64::EPSILON);
        let burn = |windows: &[SloWindow], end: usize, n: usize| -> u64 {
            let lo = (end + 1).saturating_sub(n);
            let (mut bad, mut total) = (0u64, 0u64);
            for w in &windows[lo..=end] {
                bad += w.violations;
                total += w.count;
            }
            if total == 0 {
                return 0;
            }
            let rate = (bad as f64 / total as f64) / allowed;
            (rate * 1000.0).round() as u64
        };
        for i in 0..windows.len() {
            windows[i].fast_burn_x1000 = burn(&windows, i, self.fast_windows);
            windows[i].slow_burn_x1000 = burn(&windows, i, self.slow_windows);
        }
        // Alert events: crossings of the burn thresholds, raised and cleared,
        // stamped with the end of the window that crossed.
        let mut alerts = Vec::new();
        let mut active = [false; 2];
        for w in &windows {
            let end_ns = w.start_ns + window_ns;
            for (slot, kind, burn_x1000, threshold) in [
                (0, BurnWindow::Fast, w.fast_burn_x1000, self.fast_burn_alert),
                (1, BurnWindow::Slow, w.slow_burn_x1000, self.slow_burn_alert),
            ] {
                let over = burn_x1000 as f64 >= threshold * 1000.0;
                if over != active[slot] {
                    active[slot] = over;
                    alerts.push(SloAlert {
                        kind,
                        raised: over,
                        t_ns: end_ns,
                        burn_x1000,
                        exemplars: Vec::new(),
                    });
                }
            }
        }
        let total_count: u64 = windows.iter().map(|w| w.count).sum();
        let total_violations: u64 = windows.iter().map(|w| w.violations).sum();
        let budget_total = ((1.0 - self.objective) * total_count as f64).round() as u64;
        let budget_spent_x1000 = if budget_total == 0 {
            if total_violations == 0 {
                0
            } else {
                u64::MAX
            }
        } else {
            (total_violations as f64 / budget_total as f64 * 1000.0).round() as u64
        };
        SloReport {
            spec: self.clone(),
            window_ns,
            windows,
            alerts,
            total_count,
            total_violations,
            budget_total,
            budget_spent_x1000,
        }
    }
}

/// Estimated number of values in `w` strictly above `threshold`: buckets
/// entirely above count in full; the bucket straddling the threshold
/// contributes a uniform-interpolation share. Deterministic — a pure integer
/// function of the (bit-identical) window buckets.
fn violations_over(w: &WindowEntry, threshold: u64) -> u64 {
    let mut over = 0u64;
    for &(i, c, _) in &w.buckets {
        let lo = if i == 0 { 0 } else { bucket_bound(i - 1) + 1 };
        let hi = bucket_bound(i);
        if lo > threshold {
            over += c;
        } else if hi > threshold {
            let width = hi - lo + 1;
            let above = hi - threshold;
            over += ((c as f64) * (above as f64) / (width as f64)).round() as u64;
        }
    }
    over.min(w.count)
}

/// One window of an evaluated SLO: the percentile and violation view plus
/// the burn rates of the trailing fast/slow spans ending here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloWindow {
    pub window: u64,
    pub start_ns: u64,
    pub count: u64,
    pub violations: u64,
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
    /// Fast burn rate ×1000 (1000 = burning exactly the whole budget).
    pub fast_burn_x1000: u64,
    /// Slow burn rate ×1000.
    pub slow_burn_x1000: u64,
    /// The request phase dominating this window's slow requests, filled in
    /// by [`crate::tailprof::TailAttribution::annotate`] when a traced run's
    /// tail attribution is available. `None` for clean windows (or when the
    /// run was not traced).
    pub dominant_cause: Option<ReqPhase>,
}

/// A burn-rate threshold crossing, stamped in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloAlert {
    pub kind: BurnWindow,
    /// `true` when the burn rate crossed above the alert threshold, `false`
    /// when it recovered below it.
    pub raised: bool,
    /// End of the window whose trailing burn rate crossed.
    pub t_ns: u64,
    /// The burn rate at the crossing, ×1000.
    pub burn_x1000: u64,
    /// Prometheus-style exemplars: the k worst requests of the trailing burn
    /// span that fired this alert, worst first. Filled in by
    /// [`crate::tailprof::TailAttribution::annotate`] for raised alerts;
    /// empty on clears and untraced runs.
    pub exemplars: Vec<Exemplar>,
}

/// The evaluated SLO: windows, alerts and error-budget accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    pub spec: SloSpec,
    pub window_ns: u64,
    pub windows: Vec<SloWindow>,
    pub alerts: Vec<SloAlert>,
    pub total_count: u64,
    pub total_violations: u64,
    /// Allowed violations over the whole run: `(1 - objective) × total`.
    pub budget_total: u64,
    /// Fraction of the error budget consumed, ×1000 (1000 = exhausted).
    pub budget_spent_x1000: u64,
}

impl SloReport {
    /// Did the run as a whole meet the objective?
    pub fn met(&self) -> bool {
        self.total_violations <= self.budget_total
    }

    /// JSON export (stable field order); bit-identical for bit-identical
    /// window series, which is what the determinism suite asserts.
    pub fn to_json(&self) -> Json {
        let windows = self
            .windows
            .iter()
            .map(|w| {
                Json::Object(vec![
                    ("window".to_string(), Json::uint(w.window as usize)),
                    ("start_ns".to_string(), Json::uint(w.start_ns as usize)),
                    ("count".to_string(), Json::uint(w.count as usize)),
                    ("violations".to_string(), Json::uint(w.violations as usize)),
                    ("p50".to_string(), Json::uint(w.p50 as usize)),
                    ("p99".to_string(), Json::uint(w.p99 as usize)),
                    ("p999".to_string(), Json::uint(w.p999 as usize)),
                    ("fast_burn_x1000".to_string(), Json::uint(w.fast_burn_x1000 as usize)),
                    ("slow_burn_x1000".to_string(), Json::uint(w.slow_burn_x1000 as usize)),
                    (
                        "dominant_cause".to_string(),
                        match w.dominant_cause {
                            Some(c) => Json::str(c.label()),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        let alerts = self
            .alerts
            .iter()
            .map(|a| {
                let exemplars = a
                    .exemplars
                    .iter()
                    .map(|e| {
                        Json::Object(vec![
                            ("id".to_string(), Json::uint(e.id as usize)),
                            ("pe".to_string(), Json::uint(e.pe)),
                            ("latency_ns".to_string(), Json::uint(e.latency_ns as usize)),
                            ("dominant".to_string(), Json::str(e.dominant.label())),
                        ])
                    })
                    .collect();
                Json::Object(vec![
                    ("kind".to_string(), Json::str(a.kind.label())),
                    ("raised".to_string(), Json::Bool(a.raised)),
                    ("t_ns".to_string(), Json::uint(a.t_ns as usize)),
                    ("burn_x1000".to_string(), Json::uint(a.burn_x1000 as usize)),
                    ("exemplars".to_string(), Json::Array(exemplars)),
                ])
            })
            .collect();
        Json::Object(vec![
            ("slo".to_string(), Json::str(self.spec.name)),
            ("metric".to_string(), Json::str(self.spec.metric)),
            ("threshold_ns".to_string(), Json::uint(self.spec.threshold_ns as usize)),
            (
                "objective_x1e6".to_string(),
                Json::uint((self.spec.objective * 1e6).round() as usize),
            ),
            ("window_ns".to_string(), Json::uint(self.window_ns as usize)),
            ("total_count".to_string(), Json::uint(self.total_count as usize)),
            ("total_violations".to_string(), Json::uint(self.total_violations as usize)),
            ("budget_total".to_string(), Json::uint(self.budget_total as usize)),
            ("budget_spent_x1000".to_string(), Json::uint(self.budget_spent_x1000 as usize)),
            ("met".to_string(), Json::Bool(self.met())),
            ("windows".to_string(), Json::Array(windows)),
            ("alerts".to_string(), Json::Array(alerts)),
        ])
    }

    /// Compact human-readable summary for CLI output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "SLO `{}`: {} of {} requests over {} ns ({} windows of {} ns) — budget {} violations, \
             spent {} ({}%o), {}\n",
            self.spec.name,
            self.total_violations,
            self.total_count,
            self.spec.threshold_ns,
            self.windows.len(),
            self.window_ns,
            self.budget_total,
            self.total_violations,
            self.budget_spent_x1000,
            if self.met() { "met" } else { "MISSED" },
        );
        for a in &self.alerts {
            out.push_str(&format!(
                "  [{}] {} burn alert at t={} ns (burn {:.1}x)\n",
                if a.raised { "RAISE" } else { "clear" },
                a.kind.label(),
                a.t_ns,
                a.burn_x1000 as f64 / 1000.0,
            ));
            for e in &a.exemplars {
                out.push_str(&format!(
                    "          exemplar req {:#x} pe {}: {} ns, {}\n",
                    e.id,
                    e.pe,
                    e.latency_ns,
                    e.dominant.label(),
                ));
            }
        }
        let attributed: Vec<&SloWindow> =
            self.windows.iter().filter(|w| w.dominant_cause.is_some()).collect();
        if !attributed.is_empty() {
            out.push_str("  violated windows by dominant cause:\n");
            for w in attributed {
                out.push_str(&format!(
                    "    window {:>4} @{:>12} ns: {}/{} violations, {}\n",
                    w.window,
                    w.start_ns,
                    w.violations,
                    w.count,
                    w.dominant_cause.map(|c| c.label()).unwrap_or("-"),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::stats::StatsSnapshot;

    fn spec() -> SloSpec {
        SloSpec::new("p99-latency", "serve_latency_ns", 1000, 0.99)
            .with_burn_windows(2, 4)
            .with_burn_alerts(10.0, 2.0)
    }

    #[test]
    fn clean_run_spends_no_budget() {
        let reg = MetricsRegistry::new_windowed(true, 1, 1000);
        for w in 0..4u64 {
            for i in 0..100u64 {
                reg.observe_windowed(0, "serve_latency_ns", None, w * 1000 + i, 500);
            }
        }
        let report = spec().evaluate(&reg.snapshot(StatsSnapshot::default()));
        assert_eq!(report.total_count, 400);
        assert_eq!(report.total_violations, 0);
        assert_eq!(report.budget_total, 4);
        assert_eq!(report.budget_spent_x1000, 0);
        assert!(report.met());
        assert!(report.alerts.is_empty());
        assert!(report.windows.iter().all(|w| w.fast_burn_x1000 == 0));
    }

    #[test]
    fn latency_spike_burns_budget_and_raises_then_clears() {
        let reg = MetricsRegistry::new_windowed(true, 1, 1000);
        // Three healthy windows, one spiked window (every request slow by
        // 100x), six healthy recovery windows — enough for the slow burn
        // span to drain past the spike.
        for w in 0..10u64 {
            let v = if w == 3 { 100_000 } else { 500 };
            for i in 0..100u64 {
                reg.observe_windowed(0, "serve_latency_ns", None, w * 1000 + i, v);
            }
        }
        let report = spec().evaluate(&reg.snapshot(StatsSnapshot::default()));
        assert_eq!(report.total_violations, 100, "the spiked window violates wholesale");
        assert!(!report.met(), "100 violations over a 7-request budget");
        let spike = &report.windows[3];
        assert_eq!(spike.violations, 100);
        assert!(spike.p50 > 1000);
        // Fast burn at the spike: 100 bad / 200 in the 2-window span over a
        // 1% allowance = 50x.
        assert_eq!(spike.fast_burn_x1000, 50_000);
        // Raised at the spike, cleared once the trailing spans drain.
        let raised: Vec<_> = report.alerts.iter().filter(|a| a.raised).collect();
        assert!(raised.iter().any(|a| a.kind == BurnWindow::Fast && a.t_ns == 4000));
        assert!(raised.iter().any(|a| a.kind == BurnWindow::Slow));
        let cleared: Vec<_> = report.alerts.iter().filter(|a| !a.raised).collect();
        assert!(cleared.iter().any(|a| a.kind == BurnWindow::Fast));
        assert!(cleared.iter().any(|a| a.kind == BurnWindow::Slow));
        // The report is a pure function of the window series.
        let again = spec().evaluate(&reg.snapshot(StatsSnapshot::default()));
        assert_eq!(report, again);
        assert_eq!(report.to_json().pretty(), again.to_json().pretty());
    }

    #[test]
    fn empty_windows_advance_the_burn_series() {
        let reg = MetricsRegistry::new_windowed(true, 1, 1000);
        // Requests in windows 0 and 5 only; 1..=4 are idle.
        for i in 0..10u64 {
            reg.observe_windowed(0, "serve_latency_ns", None, i, 2000);
            reg.observe_windowed(0, "serve_latency_ns", None, 5000 + i, 500);
        }
        let report = spec().evaluate(&reg.snapshot(StatsSnapshot::default()));
        assert_eq!(report.windows.len(), 6, "gap windows are densified");
        assert_eq!(report.windows[2].count, 0);
        assert_eq!(report.total_count, 20);
        assert_eq!(report.total_violations, 10);
        // JSON exports parse.
        let parsed = crate::json::parse(&report.to_json().pretty()).expect("slo json parses");
        assert_eq!(parsed.get("total_count").and_then(|v| v.as_i64()), Some(20));
    }
}
