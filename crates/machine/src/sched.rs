//! Bounded worker-pool scheduler: multiplex many PE threads onto few
//! runnable slots, admitting in virtual-time order.
//!
//! The machine spawns one OS thread per PE (an arbitrary `Fn(Pe) -> R`
//! closure cannot be suspended mid-blocking-wait without stack switching),
//! but with a worker limit `W` at most `W` of those threads are *runnable*
//! at any instant. Every other thread is either blocked in a rendezvous
//! (barrier, `wait_on`, a parked NIC-arbiter request) — where it holds no
//! slot — or parked in the ready queue waiting for one.
//!
//! The ready queue generalizes [`crate::machine::Machine::nic_turn`]'s
//! `(start, pe)` parking discipline: it is ordered by `(virtual clock, pe)`
//! and only the *minimum* ready key is admitted when a slot frees, so the
//! scheduler always runs the minimum-virtual-time ready task. Admission
//! order cannot change any simulation outcome — virtual-time results depend
//! only on program logic and on NIC reservation order, which the arbiter
//! fixes by `(start, pe)` independent of real scheduling — it just keeps
//! execution close to the virtual-time frontier, which minimizes the time
//! arbiter grants spend waiting on lagging clocks.
//!
//! Yield points (where a slot is released and later re-acquired at the
//! PE's post-wake clock): `wait_on`, barrier arrival, a parked NIC-arbiter
//! turn, and PE start/finish. Pure compute stretches between communication
//! points run without preemption — the model is cooperative, and every
//! virtual-time-advancing *blocking* point yields.
//!
//! Slot accounting is panic-safe: `holds[pe]` records slot ownership, and
//! release is idempotent, so a poison panic unwinding out of a blocking
//! region (slot already released) does not double-free the slot when the
//! launcher runs its finish hook.

use crate::machine::PeId;
use crate::sync::{Poison, WAIT_TICK_IDLE, WAIT_TICK_MIN};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide default worker limit from `PGAS_WORKERS`, read exactly
/// once (mirroring `PGAS_SANITIZER` / `PGAS_FAULT_PLAN` resolution). Unset,
/// unparsable, or `0` yields `None`: one thread per PE, no slot accounting.
pub(crate) fn env_default() -> Option<usize> {
    static ENV_DEFAULT: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var("PGAS_WORKERS").ok().and_then(|v| v.trim().parse::<usize>().ok())
    })
}

thread_local! {
    static FORCED_WORKERS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Run `f` with every machine built *on this thread* forced to worker limit
/// `workers` (`0` = unbounded legacy mode), beating both the config and the
/// `PGAS_WORKERS` environment default — the same precedence the sanitizer,
/// fault-plan, trace, and metrics overrides use. Restored on exit,
/// including on unwind.
pub fn with_forced_workers<R>(workers: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_WORKERS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCED_WORKERS.with(|c| c.replace(Some(workers))));
    f()
}

/// The limit forced by [`with_forced_workers`] on the current thread, if any.
pub(crate) fn forced_workers() -> Option<usize> {
    FORCED_WORKERS.with(|c| c.get())
}

#[derive(Debug)]
struct SchedInner {
    /// Slots currently held by runnable PE threads, `<= workers`.
    running: usize,
    /// Ready PEs waiting for a slot, ordered by `(virtual clock, pe)`.
    /// A PE's clock is frozen while it waits, so keys are stable.
    waiting: BTreeSet<(u64, PeId)>,
}

/// Worker-pool state (built only when a worker limit below the PE count was
/// resolved; legacy one-thread-per-PE machines carry `None` and pay nothing).
#[derive(Debug)]
pub(crate) struct SchedState {
    workers: usize,
    inner: Mutex<SchedInner>,
    /// Per-PE condvars, all guarded by the `inner` mutex. Admission only
    /// ever goes to the *minimum* ready key, so every wake targets exactly
    /// the PE that can act on it — a shared condvar would stampede all
    /// ready waiters through the mutex on every admission (O(n²) futex
    /// traffic across a run; the same thundering herd the NIC arbiter's
    /// parking lot had).
    cvs: Vec<Condvar>,
    /// `holds[pe]`: does `pe`'s thread currently own a slot? Only touched
    /// from `pe`'s own thread; makes release idempotent under unwinding.
    holds: Vec<AtomicBool>,
}

impl SchedState {
    pub(crate) fn new(workers: usize, n_pes: usize) -> SchedState {
        debug_assert!(workers > 0 && workers < n_pes);
        SchedState {
            workers,
            inner: Mutex::new(SchedInner { running: 0, waiting: BTreeSet::new() }),
            cvs: (0..n_pes).map(|_| Condvar::new()).collect(),
            holds: (0..n_pes).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Wake the minimum ready key if a slot is free for it. Call with the
    /// `inner` mutex held — notification under the waiter's own mutex
    /// cannot be lost, which is what lets non-minimum waiters poll lazily.
    fn wake_min(&self, inner: &SchedInner) {
        if inner.running < self.workers {
            if let Some(&(_, pe)) = inner.waiting.iter().next() {
                self.cvs[pe].notify_all();
            }
        }
    }

    /// The resolved worker limit.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Block until `pe` (ready at virtual time `clock`) is admitted: a slot
    /// is free and `(clock, pe)` is the minimum ready key. Poison admits
    /// immediately so the thread can run to its propagation panic instead of
    /// hanging the join.
    pub(crate) fn acquire(&self, pe: PeId, clock: u64, poison: &Poison) {
        debug_assert!(!self.holds[pe].load(Ordering::Relaxed), "PE already holds a slot");
        let key = (clock, pe);
        let mut inner = self.inner.lock();
        let inserted = inner.waiting.insert(key);
        debug_assert!(inserted, "a PE waits on at most one ready key at a time");
        loop {
            if poison.is_poisoned() {
                inner.waiting.remove(&key);
                inner.running += 1;
                break;
            }
            let min = *inner.waiting.iter().next().expect("own key is waiting");
            if inner.running < self.workers && min == key {
                inner.waiting.remove(&key);
                inner.running += 1;
                break;
            }
            // Only the minimum key polls eagerly (a slot can free without a
            // wake reaching us first); everyone else is woken by name when
            // it becomes the minimum and polls purely as a backstop.
            let tick = if min == key { WAIT_TICK_MIN } else { WAIT_TICK_IDLE };
            self.cvs[pe].wait_for(&mut inner, tick);
        }
        // The next-smallest ready key may be admissible too (workers > 1).
        self.wake_min(&inner);
        drop(inner);
        self.holds[pe].store(true, Ordering::Relaxed);
    }

    /// Give up `pe`'s slot (entering a blocking region, or finishing the
    /// program closure). Idempotent: a second release — e.g. the launcher's
    /// finish hook after a panic unwound out of a slotless blocking region —
    /// is a no-op.
    pub(crate) fn release(&self, pe: PeId) {
        if !self.holds[pe].swap(false, Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock();
        debug_assert!(inner.running > 0, "release without a held slot");
        inner.running -= 1;
        self.wake_min(&inner);
    }

    /// Wake all ready-queue waiters so they observe poison.
    pub(crate) fn interrupt(&self) {
        for cv in &self.cvs {
            cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_minimum_key_first() {
        let s = SchedState::new(1, 3);
        let poison = Poison::default();
        // PE 2 is ready at t=10, PE 1 at t=50: with the single slot taken,
        // releasing it must admit PE 2 before PE 1.
        s.acquire(0, 0, &poison);
        let s = Arc::new(s);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (pe, clock) in [(2, 10u64), (1, 50)] {
            let (s, order) = (s.clone(), order.clone());
            handles.push(std::thread::spawn(move || {
                let poison = Poison::default();
                s.acquire(pe, clock, &poison);
                order.lock().push(pe);
                std::thread::sleep(std::time::Duration::from_millis(10));
                s.release(pe);
            }));
            // Let the lower-clock waiter park first.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        s.release(0);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![2, 1]);
    }

    #[test]
    fn release_is_idempotent() {
        let s = SchedState::new(2, 4);
        let poison = Poison::default();
        s.acquire(0, 0, &poison);
        s.release(0);
        s.release(0); // must not underflow
        s.acquire(1, 0, &poison);
        s.acquire(2, 0, &poison);
        assert_eq!(s.inner.lock().running, 2);
    }

    #[test]
    fn poison_admits_immediately() {
        let s = SchedState::new(1, 2);
        let poison = Poison::default();
        s.acquire(0, 0, &poison);
        poison.poison();
        // Slot is taken, but poison must not leave PE 1 parked forever.
        s.acquire(1, 0, &poison);
        assert!(s.holds[1].load(Ordering::Relaxed));
    }
}
