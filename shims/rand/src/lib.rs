//! Minimal stand-in for the subset of `rand` 0.8 this workspace uses:
//! `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen`, and
//! `Rng::gen_range` over half-open and inclusive integer/float ranges.
//! Vendored in-repo so the build has no registry dependencies.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction rand's 64-bit `SmallRng` uses — so statistical quality is
//! adequate for the workloads and tests here. Streams are *not*
//! bit-compatible with the real crate; nothing in the workspace asserts
//! exact values drawn from a seed, only determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values drawable uniformly from the full domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges drawable uniformly (`rng.gen_range(lo..hi)` and `lo..=hi`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, blanket-implemented for every rng.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ (public-domain algorithm by
    /// Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

// ---- Standard draws ---------------------------------------------------------

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

// ---- range draws ------------------------------------------------------------

/// Types drawable uniformly from a range. The `SampleRange` impls below are
/// generic over this trait — mirroring the real crate's structure — so type
/// inference flows from the use site into untyped range literals
/// (`x + rng.gen_range(0..2)` infers `usize` when `x: usize`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + f32::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values drawn: {seen:?}");
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }
}
