//! Minimal stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` test macro, `prop_assert*`, `prop_oneof!`, `any`,
//! range/tuple/vec strategies and `Strategy::prop_map`. Vendored in-repo
//! so the build has no registry dependencies.
//!
//! Differences from the real crate, deliberate for this workspace:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) and the case number; it is not minimized.
//! * **Deterministic.** Each test derives its RNG seed from the test's
//!   fully-qualified name, so failures reproduce exactly under
//!   `cargo test` with no persistence files.

pub mod test_runner {
    use std::fmt;

    /// Deterministic generator behind every strategy draw
    /// (SplitMix64-seeded xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; modulo bias is negligible for
        /// the small bounds test strategies use.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty draw domain");
            self.next_u64() % bound
        }

        /// Uniform in [0, 1) with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a test case failed. Mirrors the constructor the real crate
    /// exposes as `TestCaseError::fail`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError { reason: reason.into() }
        }

        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError { reason: reason.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.reason)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-test configuration. Only the knob this workspace uses.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives one `proptest!` test: owns the RNG and the case count.
    pub struct TestRunner {
        rng: TestRng,
        cases: u32,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
            // FNV-1a over the test name: a stable, dependency-free seed.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01B3);
            }
            TestRunner { rng: TestRng::seed_from_u64(h), cases: config.cases }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        pub fn generate<S: crate::strategy::Strategy>(&mut self, strategy: &S) -> S::Value {
            strategy.generate(&mut self.rng)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Helper used by `prop_oneof!` to erase heterogeneous strategy types.
    pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The result of `prop_oneof!`: picks one branch uniformly per draw.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct ArbitraryStrategy<A> {
        _marker: PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
        ArbitraryStrategy { _marker: PhantomData }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`: a vector whose length
    /// is drawn from `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range for vec strategy");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors the real prelude's `prop` module path
    /// (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body, which
/// may use `prop_assert*` and `?` on `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                $(let $arg = runner.generate(&($strat));)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = result {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        err
                    );
                }
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `lhs == rhs`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?} == {:?}`", lhs, rhs),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    lhs,
                    rhs,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fail the current case unless `lhs != rhs`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs != *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?} != {:?}`", lhs, rhs),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs != *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?} != {:?}`: {}",
                    lhs,
                    rhs,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed_strategy($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(x in 3usize..10, y in (0u64..5).prop_map(|v| v * 2)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y.is_multiple_of(2) && y < 10, "y = {}", y);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn oneof_draws_every_branch(picks in prop::collection::vec(
            prop_oneof![0usize..1, 10usize..11],
            64..65,
        )) {
            prop_assert!(picks.iter().all(|&p| p == 0 || p == 10));
            prop_assert!(picks.contains(&0) && picks.contains(&10), "both branches drawn");
        }
    }

    #[test]
    fn question_mark_and_failure_reporting_work() {
        let body = || -> Result<(), TestCaseError> {
            Err::<(), TestCaseError>(TestCaseError::fail("inner"))?;
            Ok(())
        };
        assert_eq!(body().unwrap_err().to_string(), "inner");
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        use crate::test_runner::{ProptestConfig, TestRunner};
        let draw = |name: &str| {
            let mut r = TestRunner::new(ProptestConfig::default(), name);
            (0..8).map(|_| r.generate(&(0u64..1_000_000))).collect::<Vec<_>>()
        };
        // Same name, same stream; different name, different stream.
        assert_eq!(draw("alpha"), draw("alpha"));
        assert_ne!(draw("alpha"), draw("beta"));
    }
}
