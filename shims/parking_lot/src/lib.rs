//! Minimal stand-in for the subset of `parking_lot` this workspace uses,
//! implemented over `std::sync`. Vendored in-repo so the build has no
//! registry dependencies.
//!
//! Semantic differences from the real crate that matter here:
//!
//! * Poisoning is swallowed: a panic while holding a lock does not poison
//!   it for other threads (parking_lot has no poisoning either, so this
//!   matches the API contract callers rely on).
//! * `Condvar::wait_for` takes `&mut MutexGuard` like parking_lot; the
//!   guard briefly round-trips through the inner std guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking. Unlike `std`, never returns a poison
    /// error — parking_lot locks do not poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard returned by [`Mutex::lock`]. Holds the std guard in an `Option`
/// so [`Condvar`] methods can temporarily take it out to wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside a condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside a condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condvar wait, mirroring
/// `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable mirroring `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        assert!(!*g, "guard reacquired and usable after the wait");
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_millis(50));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "no poisoning, like parking_lot");
    }
}
